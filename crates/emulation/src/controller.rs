//! Cycle-accurate campaign timing models (Table 2).
//!
//! The emulation *time* of an autonomous campaign is simply
//! `total clock cycles / clock frequency` — there is no host in the loop.
//! These models count the cycles each technique's controller schedule
//! spends, using the per-fault classification outcomes (detection /
//! convergence cycles) produced by the behavioural oracle. The
//! [`gate_level`](crate::gate_level) harness follows the *same schedules*
//! cycle by cycle on the real instrumented netlists, which is what ties
//! these formulas to the hardware.

use std::time::Duration;

use seugrade_faultsim::{Fault, FaultOutcome};

use crate::campaign::Technique;

/// Emulation clock frequency in Hz.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClockHz(pub u64);

impl ClockHz {
    /// The paper's RC1000 configuration: 25 MHz.
    pub const PAPER: ClockHz = ClockHz(25_000_000);

    /// Converts a cycle count to wall-clock time at this frequency.
    #[must_use]
    pub fn cycles_to_time(self, cycles: u64) -> Duration {
        Duration::from_secs_f64(cycles as f64 / self.0 as f64)
    }
}

/// Fixed overheads of a campaign schedule.
#[derive(Clone, Copy, Debug)]
pub struct TimingConfig {
    /// One-time cycles for configuration/start (host writes campaign
    /// parameters, arms the controller). The paper's win is exactly that
    /// this happens once per *campaign*, not per fault.
    pub setup_cycles: u64,
    /// Controller bookkeeping cycles per fault (fault counter update,
    /// result write, circuit reset release).
    pub per_fault_overhead: u64,
    /// Emulation clock.
    pub clock: ClockHz,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig { setup_cycles: 64, per_fault_overhead: 1, clock: ClockHz::PAPER }
    }
}

/// Cycle breakdown of one campaign (one technique).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CampaignTiming {
    /// The technique being timed.
    pub technique: Technique,
    /// Number of faults graded.
    pub num_faults: u64,
    /// Cycles of the initial golden/reference pass.
    pub golden_cycles: u64,
    /// Cycles spent shifting scan chains (mask positioning, state
    /// scan-in).
    pub scan_cycles: u64,
    /// Cycles spent actually emulating faulty behaviour.
    pub run_cycles: u64,
    /// Injection pulses.
    pub inject_cycles: u64,
    /// Checkpoint restore / golden-advance cycles (time-mux).
    pub restore_cycles: u64,
    /// Setup plus per-fault bookkeeping.
    pub overhead_cycles: u64,
    /// Grand total.
    pub total_cycles: u64,
    /// Clock used for time conversion.
    pub clock: ClockHz,
}

impl CampaignTiming {
    /// Wall-clock emulation time (Table 2, "Emulation time (ms)").
    #[must_use]
    pub fn emulation_time(&self) -> Duration {
        self.clock.cycles_to_time(self.total_cycles)
    }

    /// Emulation time in milliseconds.
    #[must_use]
    pub fn millis(&self) -> f64 {
        self.emulation_time().as_secs_f64() * 1e3
    }

    /// Average speed in µs/fault (Table 2, "Average speed").
    #[must_use]
    pub fn us_per_fault(&self) -> f64 {
        if self.num_faults == 0 {
            0.0
        } else {
            self.emulation_time().as_secs_f64() * 1e6 / self.num_faults as f64
        }
    }

    /// Average cycles per fault.
    #[must_use]
    pub fn cycles_per_fault(&self) -> f64 {
        if self.num_faults == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.num_faults as f64
        }
    }
}

fn finish(
    technique: Technique,
    cfg: &TimingConfig,
    num_faults: u64,
    golden: u64,
    scan: u64,
    run: u64,
    inject: u64,
    restore: u64,
) -> CampaignTiming {
    let overhead = cfg.setup_cycles + cfg.per_fault_overhead * num_faults;
    CampaignTiming {
        technique,
        num_faults,
        golden_cycles: golden,
        scan_cycles: scan,
        run_cycles: run,
        inject_cycles: inject,
        restore_cycles: restore,
        overhead_cycles: overhead,
        total_cycles: golden + scan + run + inject + restore + overhead,
        clock: cfg.clock,
    }
}

/// Mask-scan schedule: one golden pass, then per fault a full test-bench
/// replay from cycle 0, aborted at failure detection. The mask walks the
/// scan chain one step per flip-flop change (ff-major fault order).
///
/// # Panics
///
/// Panics if `faults` and `outcomes` lengths differ.
#[must_use]
pub fn mask_scan_timing(
    faults: &[Fault],
    outcomes: &[FaultOutcome],
    num_cycles: usize,
    cfg: &TimingConfig,
) -> CampaignTiming {
    mask_scan_timing_collapsed(faults, outcomes, num_cycles, cfg, false)
}

/// [`mask_scan_timing`] with optional **early fault collapse**: when
/// `collapse` is true a silent fault's replay aborts the cycle after its
/// state re-converges with the golden machine (the comparator that spots
/// failures also spots convergence), instead of walking to the horizon.
/// Failure and latent faults are unchanged, as is every scan/overhead
/// term — so with `collapse = false` this reproduces the paper-default
/// numbers exactly.
///
/// # Panics
///
/// Panics if `faults` and `outcomes` lengths differ.
#[must_use]
pub fn mask_scan_timing_collapsed(
    faults: &[Fault],
    outcomes: &[FaultOutcome],
    num_cycles: usize,
    cfg: &TimingConfig,
    collapse: bool,
) -> CampaignTiming {
    assert_eq!(faults.len(), outcomes.len());
    let mut scan = 0u64;
    let mut run = 0u64;
    // The campaign processes faults ff-major regardless of list order;
    // count one mask step per distinct flip-flop encountered.
    let mut ffs: Vec<_> = faults.iter().map(|f| f.ff).collect();
    ffs.sort_unstable();
    ffs.dedup();
    scan += ffs.len() as u64;
    for (f, o) in faults.iter().zip(outcomes) {
        let collapse_at = if collapse { o.converge_cycle } else { None };
        let replay_end = match o.detect_cycle.or(collapse_at) {
            Some(u) => u as u64 + 1,
            None => num_cycles as u64,
        };
        debug_assert!(u64::from(f.cycle) <= replay_end);
        run += replay_end;
    }
    finish(Technique::MaskScan, cfg, faults.len() as u64, num_cycles as u64, scan, run, 0, 0)
}

/// State-scan schedule: one golden pass (recording the per-cycle states),
/// then per fault `n_ff` scan-in cycles (the previous fault's end state
/// scans out simultaneously), one load pulse, and a run from the
/// injection cycle aborted at failure detection; non-failing faults run
/// to the end plus one capture pulse.
///
/// # Panics
///
/// Panics if `faults` and `outcomes` lengths differ.
#[must_use]
pub fn state_scan_timing(
    faults: &[Fault],
    outcomes: &[FaultOutcome],
    num_cycles: usize,
    num_ffs: usize,
    cfg: &TimingConfig,
) -> CampaignTiming {
    assert_eq!(faults.len(), outcomes.len());
    let mut scan = 0u64;
    let mut run = 0u64;
    let mut inject = 0u64;
    for (f, o) in faults.iter().zip(outcomes) {
        scan += num_ffs as u64; // scan-in (+ overlapped scan-out)
        inject += 1; // load_state pulse
        let t = u64::from(f.cycle);
        match o.detect_cycle {
            Some(u) => run += u as u64 - t + 1,
            None => {
                run += num_cycles as u64 - t;
                inject += 1; // capture pulse for the end-state check
            }
        }
    }
    finish(Technique::StateScan, cfg, faults.len() as u64, num_cycles as u64, scan, run, inject, 0)
}

/// Time-multiplexed schedule: the campaign walks the test bench once
/// (cycle-major fault order). Per fault: one mask step, one inject pulse,
/// two emulation clocks per test-bench cycle until classification
/// (failure *or* convergence — both detected in hardware), one restore
/// pulse. Per test-bench cycle: two clocks to advance and checkpoint the
/// golden machine.
///
/// # Panics
///
/// Panics if `faults` and `outcomes` lengths differ.
#[must_use]
pub fn time_mux_timing(
    faults: &[Fault],
    outcomes: &[FaultOutcome],
    num_cycles: usize,
    cfg: &TimingConfig,
) -> CampaignTiming {
    assert_eq!(faults.len(), outcomes.len());
    let mut run = 0u64;
    let mut scan = 0u64;
    let mut inject = 0u64;
    let mut restore = 0u64;
    for (f, o) in faults.iter().zip(outcomes) {
        let t = u64::from(f.cycle);
        let classify = u64::from(o.classify_cycle(num_cycles));
        debug_assert!(classify >= t);
        scan += 1; // mask step
        inject += 1; // golden->faulty copy with flip
        run += 2 * (classify - t + 1);
        restore += 1; // golden restore from checkpoint
    }
    // Golden advance + checkpoint save, once per test-bench cycle.
    let advance = 2 * num_cycles as u64;
    finish(
        Technique::TimeMux,
        cfg,
        faults.len() as u64,
        advance,
        scan,
        run,
        inject,
        restore,
    )
}

/// Online (order-insensitive) fold of all three technique timing models
/// over a streamed campaign.
///
/// The batch models above walk a materialized `(faults, outcomes)` pair;
/// this accumulator observes the same pairs one at a time — in any order,
/// from any number of workers — and [`finish`](Self::finish)es into
/// [`CampaignTiming`]s **identical** to the batch results. Every folded
/// quantity is a commutative sum (or a set union, for mask-scan's
/// distinct-flip-flop count), which is what makes the streamed campaign's
/// Table-2 numbers schedule-independent.
#[derive(Clone, Debug, Default)]
pub struct TimingAccumulator {
    num_faults: u64,
    /// Mask-scan: which flip-flops appeared (one mask step each).
    ff_seen: Vec<bool>,
    /// Mask-scan: Σ (detect + 1) over failures.
    mask_fail_replay: u64,
    /// Faults with no detection (mask-scan replays them full-length;
    /// state-scan runs them to the end and spends a capture pulse).
    undetected: u64,
    /// State-scan: Σ (detect − t + 1) over failures.
    ss_fail_run: u64,
    /// Σ injection cycle over undetected faults (state-scan's
    /// `num_cycles − t` terms need it).
    undetected_t_sum: u64,
    /// Time-mux: Σ 2·(classify − t + 1) over failures and silents.
    tm_decided_run: u64,
    /// Latent faults (time-mux emulates them to the last bench cycle).
    latent: u64,
    /// Σ injection cycle over latent faults.
    latent_t_sum: u64,
}

impl TimingAccumulator {
    /// Folds one graded fault.
    pub fn observe(&mut self, fault: Fault, outcome: FaultOutcome) {
        self.num_faults += 1;
        let ff = fault.ff.index();
        if self.ff_seen.len() <= ff {
            self.ff_seen.resize(ff + 1, false);
        }
        self.ff_seen[ff] = true;
        let t = u64::from(fault.cycle);
        match outcome.detect_cycle {
            Some(u) => {
                self.mask_fail_replay += u64::from(u) + 1;
                self.ss_fail_run += u64::from(u) - t + 1;
            }
            None => {
                self.undetected += 1;
                self.undetected_t_sum += t;
            }
        }
        match outcome.detect_cycle.or(outcome.converge_cycle) {
            Some(c) => self.tm_decided_run += 2 * (u64::from(c) - t + 1),
            None => {
                self.latent += 1;
                self.latent_t_sum += t;
            }
        }
    }

    /// Absorbs another worker's accumulator.
    pub fn merge(&mut self, other: &TimingAccumulator) {
        self.num_faults += other.num_faults;
        if self.ff_seen.len() < other.ff_seen.len() {
            self.ff_seen.resize(other.ff_seen.len(), false);
        }
        for (dst, &src) in self.ff_seen.iter_mut().zip(&other.ff_seen) {
            *dst |= src;
        }
        self.mask_fail_replay += other.mask_fail_replay;
        self.undetected += other.undetected;
        self.ss_fail_run += other.ss_fail_run;
        self.undetected_t_sum += other.undetected_t_sum;
        self.tm_decided_run += other.tm_decided_run;
        self.latent += other.latent;
        self.latent_t_sum += other.latent_t_sum;
    }

    /// Serializes the folded state as one single-line checkpoint record
    /// (the `ff_seen` set travels as a `<len>:<hex>` nibble bitmap).
    /// [`from_checkpoint_line`](Self::from_checkpoint_line) inverts it
    /// exactly, so a resumed streamed campaign finishes into the same
    /// Table-2 numbers as an uninterrupted one.
    #[must_use]
    pub fn checkpoint_line(&self) -> String {
        const HEX: &[u8; 16] = b"0123456789abcdef";
        let mut bitmap = String::with_capacity(self.ff_seen.len() / 4 + 1);
        for chunk in self.ff_seen.chunks(4) {
            let mut nibble = 0usize;
            for (j, &seen) in chunk.iter().enumerate() {
                if seen {
                    nibble |= 1 << j;
                }
            }
            bitmap.push(HEX[nibble] as char);
        }
        format!(
            "timing {} {} {} {} {} {} {} {} {}:{bitmap}",
            self.num_faults,
            self.mask_fail_replay,
            self.undetected,
            self.ss_fail_run,
            self.undetected_t_sum,
            self.tm_decided_run,
            self.latent,
            self.latent_t_sum,
            self.ff_seen.len(),
        )
    }

    /// Parses a [`checkpoint_line`](Self::checkpoint_line) record;
    /// `None` if the line is not a well-formed timing record.
    #[must_use]
    pub fn from_checkpoint_line(line: &str) -> Option<Self> {
        let rest = line.strip_prefix("timing ")?;
        let fields: Vec<&str> = rest.split(' ').collect();
        if fields.len() != 9 {
            return None;
        }
        let int = |s: &str| s.parse::<u64>().ok();
        let (len_str, bitmap) = fields[8].split_once(':')?;
        let len: usize = len_str.parse().ok()?;
        if bitmap.len() != len.div_ceil(4) {
            return None;
        }
        let mut ff_seen = vec![false; len];
        for (i, c) in bitmap.chars().enumerate() {
            let nibble = c.to_digit(16)?;
            for j in 0..4 {
                let idx = i * 4 + j;
                if idx < len {
                    ff_seen[idx] = nibble & (1 << j) != 0;
                }
            }
        }
        Some(TimingAccumulator {
            num_faults: int(fields[0])?,
            ff_seen,
            mask_fail_replay: int(fields[1])?,
            undetected: int(fields[2])?,
            ss_fail_run: int(fields[3])?,
            undetected_t_sum: int(fields[4])?,
            tm_decided_run: int(fields[5])?,
            latent: int(fields[6])?,
            latent_t_sum: int(fields[7])?,
        })
    }

    /// Produces the three per-technique timings, in
    /// [`Technique::ALL`] order — bit-identical to the batch models over
    /// the same `(fault, outcome)` set.
    #[must_use]
    pub fn finish(
        &self,
        cfg: &TimingConfig,
        num_cycles: usize,
        num_ffs: usize,
    ) -> [CampaignTiming; 3] {
        let n = num_cycles as u64;
        let distinct_ffs = self.ff_seen.iter().filter(|&&s| s).count() as u64;
        let mask = finish(
            Technique::MaskScan,
            cfg,
            self.num_faults,
            n,
            distinct_ffs,
            self.mask_fail_replay + self.undetected * n,
            0,
            0,
        );
        let state = finish(
            Technique::StateScan,
            cfg,
            self.num_faults,
            n,
            self.num_faults * num_ffs as u64,
            self.ss_fail_run + self.undetected * n - self.undetected_t_sum,
            self.num_faults + self.undetected,
            0,
        );
        // Latent faults emulate to the last bench cycle:
        // 2·((n−1) − t + 1) = 2·(n − t) per fault.
        let tm_run = self.tm_decided_run + 2 * (self.latent * n - self.latent_t_sum);
        let tmux = finish(
            Technique::TimeMux,
            cfg,
            self.num_faults,
            2 * n,
            self.num_faults,
            tm_run,
            self.num_faults,
            self.num_faults,
        );
        [mask, state, tmux]
    }
}

#[cfg(test)]
mod tests {
    use seugrade_netlist::FfIndex;

    use super::*;

    fn fault(ff: usize, t: u32) -> Fault {
        Fault::new(FfIndex::new(ff), t)
    }

    fn cfg() -> TimingConfig {
        TimingConfig { setup_cycles: 0, per_fault_overhead: 0, clock: ClockHz::PAPER }
    }

    #[test]
    fn clock_conversion() {
        let c = ClockHz(25_000_000);
        assert_eq!(c.cycles_to_time(25_000_000), Duration::from_secs(1));
        let t = c.cycles_to_time(25); // 1 us
        assert!((t.as_secs_f64() - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn timing_accumulator_checkpoint_roundtrip() {
        let mut acc = TimingAccumulator::default();
        acc.observe(fault(0, 3), FaultOutcome::failure(7));
        acc.observe(fault(6, 1), FaultOutcome::silent(4));
        acc.observe(fault(2, 0), FaultOutcome::latent());
        let line = acc.checkpoint_line();
        let back = TimingAccumulator::from_checkpoint_line(&line).unwrap();
        let cfg = cfg();
        assert_eq!(back.finish(&cfg, 20, 7), acc.finish(&cfg, 20, 7));
        // Restored accumulators keep folding identically.
        let extra = (fault(5, 9), FaultOutcome::failure(12));
        let mut a = acc.clone();
        let mut b = back;
        a.observe(extra.0, extra.1);
        b.observe(extra.0, extra.1);
        assert_eq!(a.finish(&cfg, 20, 7), b.finish(&cfg, 20, 7));
    }

    #[test]
    fn timing_checkpoint_rejects_malformed_lines() {
        for bad in [
            "",
            "timing",
            "timing 1 2 3",
            "timing 1 2 3 4 5 6 7 8 9",      // bitmap field not len:hex
            "timing 1 2 3 4 5 6 7 8 8:f",     // bitmap too short for len
            "timing x 2 3 4 5 6 7 8 0:",      // non-numeric field
            "other 1 2 3 4 5 6 7 8 0:",
        ] {
            assert!(TimingAccumulator::from_checkpoint_line(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn mask_scan_replays_prefix() {
        // Fault at cycle 50 detected at 60: replay = 61 cycles, even
        // though injection was at 50.
        let faults = [fault(0, 50)];
        let outcomes = [FaultOutcome::failure(60)];
        let t = mask_scan_timing(&faults, &outcomes, 100, &cfg());
        assert_eq!(t.run_cycles, 61);
        assert_eq!(t.golden_cycles, 100);
        assert_eq!(t.scan_cycles, 1);
    }

    #[test]
    fn mask_scan_nonfailure_runs_full_bench() {
        let faults = [fault(0, 50), fault(1, 10)];
        let outcomes = [FaultOutcome::latent(), FaultOutcome::silent(20)];
        let t = mask_scan_timing(&faults, &outcomes, 100, &cfg());
        // Both replay the full 100 cycles: mask-scan cannot observe
        // convergence.
        assert_eq!(t.run_cycles, 200);
        assert_eq!(t.scan_cycles, 2);
    }

    #[test]
    fn mask_scan_early_collapse_retires_silent_faults_at_convergence() {
        let faults = [fault(0, 50), fault(1, 10), fault(2, 5)];
        let outcomes =
            [FaultOutcome::latent(), FaultOutcome::silent(20), FaultOutcome::failure(8)];
        let plain = mask_scan_timing(&faults, &outcomes, 100, &cfg());
        let off = mask_scan_timing_collapsed(&faults, &outcomes, 100, &cfg(), false);
        // collapse = false reproduces the default schedule exactly.
        assert_eq!(plain, off);
        let on = mask_scan_timing_collapsed(&faults, &outcomes, 100, &cfg(), true);
        // Latent 100 + silent retired at 20+1 + failure aborted at 8+1;
        // only the silent fault's run shrinks, all other terms match.
        assert_eq!(on.run_cycles, 100 + 21 + 9);
        assert_eq!(plain.run_cycles, 100 + 100 + 9);
        assert_eq!(on.scan_cycles, plain.scan_cycles);
        assert_eq!(on.overhead_cycles, plain.overhead_cycles);
        assert!(on.total_cycles < plain.total_cycles);
    }

    #[test]
    fn state_scan_skips_prefix_but_pays_scan() {
        let faults = [fault(3, 50)];
        let outcomes = [FaultOutcome::failure(60)];
        let t = state_scan_timing(&faults, &outcomes, 100, 215, &cfg());
        assert_eq!(t.scan_cycles, 215);
        assert_eq!(t.run_cycles, 11); // cycles 50..=60
        assert_eq!(t.inject_cycles, 1); // load pulse only (failure)
    }

    #[test]
    fn state_scan_nonfailure_pays_capture() {
        let faults = [fault(3, 90)];
        let outcomes = [FaultOutcome::latent()];
        let t = state_scan_timing(&faults, &outcomes, 100, 10, &cfg());
        assert_eq!(t.run_cycles, 10); // cycles 90..100
        assert_eq!(t.inject_cycles, 2); // load + capture
    }

    #[test]
    fn time_mux_early_terminates_on_convergence() {
        let faults = [fault(0, 10), fault(1, 10), fault(2, 10)];
        let outcomes = [
            FaultOutcome::failure(12),  // 2*(12-10+1) = 6
            FaultOutcome::silent(10),   // 2*1 = 2
            FaultOutcome::latent(),     // runs to end: 2*(19-10+1) = 20
        ];
        let t = time_mux_timing(&faults, &outcomes, 20, &cfg());
        assert_eq!(t.run_cycles, 6 + 2 + 20);
        assert_eq!(t.inject_cycles, 3);
        assert_eq!(t.restore_cycles, 3);
        assert_eq!(t.golden_cycles, 40, "2 cycles per bench cycle");
    }

    #[test]
    fn us_per_fault_at_paper_clock() {
        // 14.5 cycles/fault at 25 MHz = 0.58 us/fault (the paper's
        // headline time-mux number).
        let faults: Vec<Fault> = (0..100).map(|i| fault(i % 5, 0)).collect();
        let outcomes: Vec<FaultOutcome> =
            (0..100).map(|_| FaultOutcome::silent(2)).collect();
        let mut c = cfg();
        c.per_fault_overhead = 1;
        let t = time_mux_timing(&faults, &outcomes, 10, &c);
        // per fault: scan1 + inject1 + run6 + restore1 + overhead1 = 10
        // plus golden advance 20 cycles amortized
        assert_eq!(t.total_cycles, 100 * 10 + 20);
        let us = t.us_per_fault();
        assert!((us - (10.2 / 25.0)).abs() < 1e-9, "{us}");
    }

    #[test]
    fn paper_ordering_holds_for_b14_shape() {
        // With b14's parameters (215 ffs, 160 cycles) and plausible
        // outcome mixes, time-mux << mask-scan < state-scan.
        let n_ff = 215;
        let n_cycles = 160usize;
        let mut faults = Vec::new();
        let mut outcomes = Vec::new();
        for t in 0..n_cycles as u32 {
            for ff in 0..n_ff {
                faults.push(fault(ff, t));
                // Paper-like mix: ~50 % fail shortly after injection,
                // ~5 % latent, the rest converge after 2 cycles.
                let o = match ff % 20 {
                    0..=9 => FaultOutcome::failure((t + 3).min(n_cycles as u32 - 1)),
                    10 => FaultOutcome::latent(),
                    _ => FaultOutcome::silent((t + 2).min(n_cycles as u32 - 1)),
                };
                outcomes.push(o);
            }
        }
        let c = TimingConfig::default();
        let mask = mask_scan_timing(&faults, &outcomes, n_cycles, &c);
        let state = state_scan_timing(&faults, &outcomes, n_cycles, n_ff, &c);
        let tmux = time_mux_timing(&faults, &outcomes, n_cycles, &c);
        assert!(tmux.total_cycles * 5 < mask.total_cycles, "time-mux wins big");
        assert!(mask.total_cycles < state.total_cycles, "160 cycles < 215 ffs");
    }

    #[test]
    fn accumulator_matches_batch_models_in_any_fold_order() {
        // A mixed verdict set with skewed flip-flop usage (ff 3 repeats,
        // ff 5 never fails) and every class represented.
        let n_cycles = 40usize;
        let n_ff = 7;
        let pairs: Vec<(Fault, FaultOutcome)> = vec![
            (fault(3, 0), FaultOutcome::failure(2)),
            (fault(3, 5), FaultOutcome::silent(9)),
            (fault(1, 12), FaultOutcome::latent()),
            (fault(0, 39), FaultOutcome::failure(39)),
            (fault(6, 20), FaultOutcome::silent(20)),
            (fault(2, 7), FaultOutcome::latent()),
            (fault(3, 33), FaultOutcome::failure(38)),
        ];
        let faults: Vec<Fault> = pairs.iter().map(|&(f, _)| f).collect();
        let outcomes: Vec<FaultOutcome> = pairs.iter().map(|&(_, o)| o).collect();
        let cfg = TimingConfig::default();
        let expect = [
            mask_scan_timing(&faults, &outcomes, n_cycles, &cfg),
            state_scan_timing(&faults, &outcomes, n_cycles, n_ff, &cfg),
            time_mux_timing(&faults, &outcomes, n_cycles, &cfg),
        ];
        // Fold in reverse across two accumulators merged backwards.
        let mut a = TimingAccumulator::default();
        let mut b = TimingAccumulator::default();
        for (i, &(f, o)) in pairs.iter().enumerate().rev() {
            if i % 2 == 0 {
                a.observe(f, o);
            } else {
                b.observe(f, o);
            }
        }
        let mut merged = TimingAccumulator::default();
        merged.merge(&b);
        merged.merge(&a);
        assert_eq!(merged.finish(&cfg, n_cycles, n_ff), expect);
    }

    #[test]
    fn empty_accumulator_matches_empty_batch() {
        let cfg = TimingConfig::default();
        let acc = TimingAccumulator::default();
        let [mask, state, tmux] = acc.finish(&cfg, 16, 4);
        assert_eq!(mask, mask_scan_timing(&[], &[], 16, &cfg));
        assert_eq!(state, state_scan_timing(&[], &[], 16, 4, &cfg));
        assert_eq!(tmux, time_mux_timing(&[], &[], 16, &cfg));
    }

    #[test]
    fn crossover_when_cycles_exceed_ffs() {
        // Same mix but 64 ffs and 1024 cycles: state-scan must now beat
        // mask-scan (the paper's §III observation).
        let n_ff = 64;
        let n_cycles = 1024usize;
        let mut faults = Vec::new();
        let mut outcomes = Vec::new();
        for t in (0..n_cycles as u32).step_by(8) {
            for ff in 0..n_ff {
                faults.push(fault(ff, t));
                outcomes.push(match ff % 2 {
                    0 => FaultOutcome::failure((t + 4).min(n_cycles as u32 - 1)),
                    _ => FaultOutcome::silent((t + 2).min(n_cycles as u32 - 1)),
                });
            }
        }
        let c = TimingConfig::default();
        let mask = mask_scan_timing(&faults, &outcomes, n_cycles, &c);
        let state = state_scan_timing(&faults, &outcomes, n_cycles, n_ff, &c);
        assert!(state.total_cycles < mask.total_cycles);
    }
}
