//! Ablation timing models: what each technique's key mechanism is worth.
//!
//! The paper motivates three mechanisms without isolating their
//! contributions; these variants re-run the cycle-accurate schedules
//! with one mechanism removed (or added), quantifying each design
//! choice:
//!
//! - [`time_mux_without_early_silent`] — disable the `state_diff`
//!   convergence detector: silent faults emulate to the end of the
//!   bench, exactly like latent ones. This is the mechanism the paper
//!   credits for time-mux being "quite faster … because it allows
//!   detecting fault effects disappearing without executing the whole
//!   testbench".
//! - [`state_scan_without_overlap`] — scan the previous fault's end
//!   state *out* before scanning the next state in, instead of
//!   overlapping both on the same shift cycles: non-failing faults pay a
//!   second `n_ff` shift.
//! - [`mask_scan_with_state_compare`] — give mask-scan a per-cycle
//!   golden-state comparator (costing a golden state trace in FPGA RAM,
//!   `n_ff × n_cycles` bits): non-failing faults can now stop at
//!   convergence instead of replaying the full bench, at mask-scan's
//!   replay-from-zero discipline.

use seugrade_faultsim::{Fault, FaultOutcome};

use crate::campaign::Technique;
use crate::controller::{CampaignTiming, TimingConfig};

fn finish(
    technique: Technique,
    cfg: &TimingConfig,
    num_faults: u64,
    golden: u64,
    scan: u64,
    run: u64,
    inject: u64,
    restore: u64,
) -> CampaignTiming {
    let overhead = cfg.setup_cycles + cfg.per_fault_overhead * num_faults;
    CampaignTiming {
        technique,
        num_faults,
        golden_cycles: golden,
        scan_cycles: scan,
        run_cycles: run,
        inject_cycles: inject,
        restore_cycles: restore,
        overhead_cycles: overhead,
        total_cycles: golden + scan + run + inject + restore + overhead,
        clock: cfg.clock,
    }
}

/// Time-mux with the convergence detector removed: only failures stop
/// early; silent and latent faults both emulate `2 × (n_cycles − t)`
/// cycles.
///
/// # Panics
///
/// Panics if `faults` and `outcomes` lengths differ.
#[must_use]
pub fn time_mux_without_early_silent(
    faults: &[Fault],
    outcomes: &[FaultOutcome],
    num_cycles: usize,
    cfg: &TimingConfig,
) -> CampaignTiming {
    assert_eq!(faults.len(), outcomes.len());
    let mut run = 0u64;
    let mut scan = 0u64;
    let mut inject = 0u64;
    let mut restore = 0u64;
    for (f, o) in faults.iter().zip(outcomes) {
        let t = u64::from(f.cycle);
        let end = match o.detect_cycle {
            Some(u) => u as u64,
            None => num_cycles as u64 - 1,
        };
        scan += 1;
        inject += 1;
        run += 2 * (end - t + 1);
        restore += 1;
    }
    let advance = 2 * num_cycles as u64;
    finish(
        Technique::TimeMux,
        cfg,
        faults.len() as u64,
        advance,
        scan,
        run,
        inject,
        restore,
    )
}

/// State-scan without the scan-in/scan-out overlap: non-failing faults
/// pay an explicit `n_ff`-cycle scan-out before the next fault's scan-in.
///
/// # Panics
///
/// Panics if `faults` and `outcomes` lengths differ.
#[must_use]
pub fn state_scan_without_overlap(
    faults: &[Fault],
    outcomes: &[FaultOutcome],
    num_cycles: usize,
    num_ffs: usize,
    cfg: &TimingConfig,
) -> CampaignTiming {
    assert_eq!(faults.len(), outcomes.len());
    let mut scan = 0u64;
    let mut run = 0u64;
    let mut inject = 0u64;
    for (f, o) in faults.iter().zip(outcomes) {
        scan += num_ffs as u64; // scan-in
        inject += 1; // load pulse
        let t = u64::from(f.cycle);
        match o.detect_cycle {
            Some(u) => run += u as u64 - t + 1,
            None => {
                run += num_cycles as u64 - t;
                inject += 1; // capture
                scan += num_ffs as u64; // dedicated scan-out
            }
        }
    }
    finish(
        Technique::StateScan,
        cfg,
        faults.len() as u64,
        num_cycles as u64,
        scan,
        run,
        inject,
        0,
    )
}

/// Mask-scan upgraded with a per-cycle golden-state comparator: the
/// replay still starts at cycle 0, but non-failing faults stop at
/// convergence instead of the end of the bench. Needs the golden state
/// trace (`n_ff × n_cycles` bits) in FPGA RAM.
///
/// # Panics
///
/// Panics if `faults` and `outcomes` lengths differ.
#[must_use]
pub fn mask_scan_with_state_compare(
    faults: &[Fault],
    outcomes: &[FaultOutcome],
    num_cycles: usize,
    cfg: &TimingConfig,
) -> CampaignTiming {
    assert_eq!(faults.len(), outcomes.len());
    let mut scan = 0u64;
    let mut run = 0u64;
    let mut ffs: Vec<_> = faults.iter().map(|f| f.ff).collect();
    ffs.sort_unstable();
    ffs.dedup();
    scan += ffs.len() as u64;
    for o in outcomes {
        let end = u64::from(o.classify_cycle(num_cycles));
        run += end + 1; // replay from zero to the classification cycle
    }
    finish(
        Technique::MaskScan,
        cfg,
        faults.len() as u64,
        num_cycles as u64,
        scan,
        run,
        0,
        0,
    )
}

#[cfg(test)]
mod tests {
    use seugrade_netlist::FfIndex;

    use crate::controller::{mask_scan_timing, state_scan_timing, time_mux_timing, ClockHz};
    use super::*;

    fn cfg() -> TimingConfig {
        TimingConfig { setup_cycles: 0, per_fault_overhead: 0, clock: ClockHz::PAPER }
    }

    fn mixed_campaign(n_ff: usize, n_cycles: usize) -> (Vec<Fault>, Vec<FaultOutcome>) {
        let mut faults = Vec::new();
        let mut outcomes = Vec::new();
        for t in 0..n_cycles as u32 {
            for ff in 0..n_ff {
                faults.push(Fault::new(FfIndex::new(ff), t));
                outcomes.push(match ff % 4 {
                    0 => FaultOutcome::failure((t + 2).min(n_cycles as u32 - 1)),
                    1 => FaultOutcome::latent(),
                    _ => FaultOutcome::silent((t + 1).min(n_cycles as u32 - 1)),
                });
            }
        }
        (faults, outcomes)
    }

    #[test]
    fn early_silent_detection_is_the_time_mux_win() {
        let (faults, outcomes) = mixed_campaign(8, 64);
        let with = time_mux_timing(&faults, &outcomes, 64, &cfg());
        let without = time_mux_without_early_silent(&faults, &outcomes, 64, &cfg());
        assert!(
            without.total_cycles > 2 * with.total_cycles,
            "{} vs {}",
            without.total_cycles,
            with.total_cycles
        );
        // Failures are unaffected, so the delta is exactly the silent
        // faults' saved tails.
        assert_eq!(with.inject_cycles, without.inject_cycles);
    }

    #[test]
    fn overlap_saves_one_scan_per_surviving_fault() {
        let (faults, outcomes) = mixed_campaign(10, 40);
        let with = state_scan_timing(&faults, &outcomes, 40, 10, &cfg());
        let without = state_scan_without_overlap(&faults, &outcomes, 40, 10, &cfg());
        let survivors = outcomes.iter().filter(|o| o.detect_cycle.is_none()).count() as u64;
        assert_eq!(without.scan_cycles - with.scan_cycles, survivors * 10);
        assert_eq!(without.run_cycles, with.run_cycles);
    }

    #[test]
    fn state_compare_upgrade_helps_mask_scan() {
        let (faults, outcomes) = mixed_campaign(8, 64);
        let plain = mask_scan_timing(&faults, &outcomes, 64, &cfg());
        let upgraded = mask_scan_with_state_compare(&faults, &outcomes, 64, &cfg());
        assert!(upgraded.total_cycles < plain.total_cycles);
        // But it can never beat time-mux: the replay prefix remains.
        let tmux = time_mux_timing(&faults, &outcomes, 64, &cfg());
        assert!(tmux.total_cycles < upgraded.total_cycles);
    }
}
