//! Host-controlled emulation baseline (Civera et al. \[2\]).
//!
//! Before the autonomous system, FPGA fault injection was driven from a
//! host computer: per fault, the host configures the injection target,
//! starts the run, and reads back the verdict — and in the slowest
//! variants also feeds stimuli cycle by cycle. The paper quotes
//! ≈100 µs/fault for \[2\] versus 0.58–11.2 µs/fault autonomous; the
//! bottleneck is entirely in the host↔board transfers, which this model
//! makes explicit.

use std::time::Duration;

use seugrade_faultsim::FaultOutcome;

use crate::controller::ClockHz;

/// Latency model of a host-driven emulation campaign.
#[derive(Clone, Copy, Debug)]
pub struct HostLinkModel {
    /// One host↔board transaction (driver call + bus transfer), in µs.
    /// PCI-era drivers cost tens of µs per small transaction.
    pub per_transfer_us: f64,
    /// Transactions per fault (configure mask + read result is 2; add
    /// per-run start/stop for 3–4).
    pub transfers_per_fault: u32,
    /// Emulation clock of the board while it is running.
    pub clock: ClockHz,
}

impl HostLinkModel {
    /// Calibrated to the ≈100 µs/fault reported for \[2\] on b14-class
    /// circuits: 3 transactions at 32 µs plus the emulation cycles.
    #[must_use]
    pub fn paper_reference() -> Self {
        HostLinkModel {
            per_transfer_us: 32.0,
            transfers_per_fault: 3,
            clock: ClockHz::PAPER,
        }
    }

    /// Campaign wall-clock time: per fault, the host transactions plus a
    /// full-prefix replay on the board (the \[2\] architecture is
    /// mask-scan-like: it restarts the test bench per fault and aborts on
    /// detection).
    #[must_use]
    pub fn campaign_time(&self, outcomes: &[FaultOutcome], num_cycles: usize) -> Duration {
        let mut cycles = 0u64;
        for o in outcomes {
            cycles += match o.detect_cycle {
                Some(u) => u as u64 + 1,
                None => num_cycles as u64,
            };
        }
        let emu = self.clock.cycles_to_time(cycles);
        let host = Duration::from_secs_f64(
            outcomes.len() as f64 * self.transfers_per_fault as f64 * self.per_transfer_us * 1e-6,
        );
        emu + host
    }

    /// Average µs/fault for a campaign.
    #[must_use]
    pub fn us_per_fault(&self, outcomes: &[FaultOutcome], num_cycles: usize) -> f64 {
        if outcomes.is_empty() {
            return 0.0;
        }
        self.campaign_time(outcomes, num_cycles).as_secs_f64() * 1e6 / outcomes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_transfers_dominate() {
        let m = HostLinkModel::paper_reference();
        // 1000 silent faults each replaying 160 cycles at 25 MHz:
        // board time = 160/25e6 = 6.4 us, host = 96 us.
        let outcomes: Vec<FaultOutcome> =
            (0..1000).map(|_| FaultOutcome::silent(0)).collect();
        let us = m.us_per_fault(&outcomes, 160);
        assert!((us - (96.0 + 6.4)).abs() < 0.1, "{us}");
    }

    #[test]
    fn calibration_is_order_100us() {
        let m = HostLinkModel::paper_reference();
        let outcomes: Vec<FaultOutcome> = (0..100)
            .map(|i| {
                if i % 2 == 0 {
                    FaultOutcome::failure(80)
                } else {
                    FaultOutcome::latent()
                }
            })
            .collect();
        let us = m.us_per_fault(&outcomes, 160);
        assert!((90.0..120.0).contains(&us), "{us} us/fault");
    }

    #[test]
    fn empty_campaign_is_zero() {
        let m = HostLinkModel::paper_reference();
        assert_eq!(m.us_per_fault(&[], 160), 0.0);
    }
}
