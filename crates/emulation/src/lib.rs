//! Autonomous FPGA fault-emulation system — the DATE'05 contribution.
//!
//! The paper moves the *entire* SEU fault-injection campaign into the
//! FPGA: stimuli application, fault injection, output checking and fault
//! classification all run in hardware, with host communication only at
//! the start and end. Three circuit-instrumentation techniques implement
//! this idea; this crate reproduces all three as *real netlist
//! transforms* plus cycle-accurate campaign controllers:
//!
//! | module | paper concept |
//! |--------|---------------|
//! | [`instrument::mask_scan`] | mask flip-flop per circuit flip-flop marks the injection target; the test bench restarts per fault |
//! | [`instrument::state_scan`] | shadow scan chain inserts a corrupted state directly, skipping the test-bench prefix |
//! | [`instrument::time_mux`] | Figure 1 instrument: golden + faulty + mask + state flip-flops; golden/faulty runs alternate cycles, with checkpointing and early classification |
//! | [`controller`] | per-technique campaign schedules with exact cycle accounting (Table 2) |
//! | [`ram`] | campaign memory regions and their board/FPGA placement (Table 1's RAM column) |
//! | [`controller_netlist`] | synthesizable controller models (Table 1's emulator-system rows) |
//! | [`hostlink`] | the host-controlled emulation baseline of Civera et al. \[2\] (≈100 µs/fault) |
//! | [`campaign`] | end-to-end autonomous campaign: grading verdicts + emulation time |
//! | [`gate_level`] | drives the instrumented netlists cycle by cycle like the FPGA controller would, proving the transforms classify identically to the software oracle |
//!
//! # Example — grade a circuit with all three techniques
//!
//! ```
//! use seugrade_circuits::generators;
//! use seugrade_emulation::campaign::{AutonomousCampaign, Technique};
//! use seugrade_sim::Testbench;
//!
//! let circuit = generators::lfsr(8, &[7, 5, 4, 3]);
//! let tb = Testbench::constant_low(0, 24);
//! let campaign = AutonomousCampaign::new(&circuit, &tb);
//! for technique in Technique::ALL {
//!     let report = campaign.run(technique);
//!     assert_eq!(report.summary.total(), 8 * 24);
//!     assert!(report.timing.total_cycles > 0);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod campaign;
pub mod controller;
pub mod controller_netlist;
pub mod gate_level;
pub mod hostlink;
pub mod instrument;
pub mod ram;

pub use campaign::{
    AutonomousCampaign, CampaignSink, EmulationReport, StreamedCampaign, StreamedCampaignStatus,
    Technique,
};
pub use controller::{CampaignTiming, ClockHz, TimingAccumulator};
