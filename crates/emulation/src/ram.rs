//! Campaign memory planning (Table 1's RAM column).
//!
//! The autonomous emulator stores everything the campaign needs in RAM:
//! stimuli, golden responses, per-fault state vectors and the result log.
//! Regions read or written every emulation cycle live in on-FPGA block
//! RAM; bulk regions live in the board's external SRAM (the RC1000's
//! 8 MB). This module reproduces the placement and the bit counts, which
//! is how the paper's seemingly odd numbers (7,289 kbit for state-scan,
//! 33 kbit for mask-scan) decompose.

use std::fmt;

use crate::campaign::Technique;

/// Where a region is placed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// On-FPGA block RAM (read every cycle).
    Fpga,
    /// On-board external SRAM (bulk, accessed per fault).
    Board,
}

/// One named memory region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RamRegion {
    /// Region name (stable identifiers, e.g. `stimuli`).
    pub name: &'static str,
    /// Size in bits.
    pub bits: u64,
    /// Placement.
    pub placement: Placement,
}

/// The full memory plan of one campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RamPlan {
    technique: Technique,
    regions: Vec<RamRegion>,
}

/// Campaign dimensions needed for memory planning.
#[derive(Clone, Copy, Debug)]
pub struct RamParams {
    /// Primary inputs of the circuit under test.
    pub num_inputs: usize,
    /// Primary outputs of the circuit under test.
    pub num_outputs: usize,
    /// Flip-flops of the circuit under test.
    pub num_ffs: usize,
    /// Test-bench cycles.
    pub num_cycles: usize,
    /// Faults in the campaign.
    pub num_faults: usize,
}

impl RamPlan {
    /// Plans the memory for one technique.
    #[must_use]
    pub fn plan(technique: Technique, p: &RamParams) -> Self {
        let mut regions = vec![RamRegion {
            name: "stimuli",
            bits: p.num_inputs as u64 * p.num_cycles as u64,
            placement: Placement::Fpga,
        }];
        match technique {
            Technique::MaskScan => {
                regions.push(RamRegion {
                    name: "golden_outputs",
                    bits: p.num_outputs as u64 * p.num_cycles as u64,
                    placement: Placement::Fpga,
                });
                // 1 result bit per fault: mask-scan natively observes
                // only failure / no-failure (Table 1: 33 kbit ≈ 34,400
                // bits).
                regions.push(RamRegion {
                    name: "results",
                    bits: p.num_faults as u64,
                    placement: Placement::Board,
                });
            }
            Technique::StateScan => {
                regions.push(RamRegion {
                    name: "golden_outputs",
                    bits: p.num_outputs as u64 * p.num_cycles as u64,
                    placement: Placement::Fpga,
                });
                regions.push(RamRegion {
                    name: "golden_end_state",
                    bits: p.num_ffs as u64,
                    placement: Placement::Fpga,
                });
                // One full scan-in state vector per fault — the paper's
                // dominant 7,289 kbit region (215 × 34,400 bits).
                regions.push(RamRegion {
                    name: "scan_states",
                    bits: p.num_ffs as u64 * p.num_faults as u64,
                    placement: Placement::Board,
                });
                regions.push(RamRegion {
                    name: "results",
                    bits: 2 * p.num_faults as u64,
                    placement: Placement::Board,
                });
            }
            Technique::TimeMux => {
                // No golden responses at all: the golden machine runs
                // concurrently (Table 1: FPGA RAM is stimuli only).
                regions.push(RamRegion {
                    name: "results",
                    bits: 2 * p.num_faults as u64,
                    placement: Placement::Board,
                });
            }
        }
        RamPlan { technique, regions }
    }

    /// The technique this plan belongs to.
    #[must_use]
    pub fn technique(&self) -> Technique {
        self.technique
    }

    /// All regions.
    #[must_use]
    pub fn regions(&self) -> &[RamRegion] {
        &self.regions
    }

    /// Looks up a region by name.
    #[must_use]
    pub fn region(&self, name: &str) -> Option<&RamRegion> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// Total on-FPGA bits.
    #[must_use]
    pub fn fpga_bits(&self) -> u64 {
        self.regions
            .iter()
            .filter(|r| r.placement == Placement::Fpga)
            .map(|r| r.bits)
            .sum()
    }

    /// Total on-board bits.
    #[must_use]
    pub fn board_bits(&self) -> u64 {
        self.regions
            .iter()
            .filter(|r| r.placement == Placement::Board)
            .map(|r| r.bits)
            .sum()
    }

    /// Kilobits (1024-bit units) on the FPGA, Table 1 convention.
    #[must_use]
    pub fn fpga_kbits(&self) -> f64 {
        self.fpga_bits() as f64 / 1024.0
    }

    /// Kilobits on the board RAM, Table 1 convention.
    #[must_use]
    pub fn board_kbits(&self) -> f64 {
        self.board_bits() as f64 / 1024.0
    }
}

impl fmt::Display for RamPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} RAM plan: {:.1} kbit board / {:.1} kbit FPGA",
            self.technique,
            self.board_kbits(),
            self.fpga_kbits()
        )?;
        for r in &self.regions {
            writeln!(
                f,
                "  {:<18} {:>12} bits  ({})",
                r.name,
                r.bits,
                match r.placement {
                    Placement::Fpga => "FPGA",
                    Placement::Board => "board",
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// b14/160 campaign dimensions.
    fn b14() -> RamParams {
        RamParams {
            num_inputs: 32,
            num_outputs: 54,
            num_ffs: 215,
            num_cycles: 160,
            num_faults: 34_400,
        }
    }

    #[test]
    fn mask_scan_matches_paper_scale() {
        let plan = RamPlan::plan(Technique::MaskScan, &b14());
        // FPGA: stimuli 5,120 + golden outputs 8,640 = 13,760 bits
        // = 13.4 kbit (paper: 13.4).
        assert_eq!(plan.fpga_bits(), 13_760);
        assert!((plan.fpga_kbits() - 13.4).abs() < 0.1);
        // Board: 34,400 result bits = 33.6 kbit (paper: 33).
        assert_eq!(plan.board_bits(), 34_400);
        assert!((plan.board_kbits() - 33.0).abs() < 1.0);
    }

    #[test]
    fn state_scan_matches_paper_scale() {
        let plan = RamPlan::plan(Technique::StateScan, &b14());
        // Scan states: 215 × 34,400 = 7,396,000 bits = 7,223 kbit;
        // paper prints 7,289 kbit — same region, within 1 %.
        let scan = plan.region("scan_states").unwrap();
        assert_eq!(scan.bits, 7_396_000);
        let paper_kbits = 7_289.0;
        let ratio = plan.board_kbits() / paper_kbits;
        assert!((0.95..1.05).contains(&ratio), "ratio {ratio}");
        assert_eq!(plan.fpga_bits(), 13_760 + 215);
    }

    #[test]
    fn time_mux_matches_paper_scale() {
        let plan = RamPlan::plan(Technique::TimeMux, &b14());
        // FPGA: stimuli only, 5,120 bits = 5.0 kbit (paper: 5.3).
        assert_eq!(plan.fpga_bits(), 5_120);
        assert!(plan.region("golden_outputs").is_none());
        // Board: 2 × 34,400 = 68,800 bits = 67.2 kbit (paper: 67).
        assert_eq!(plan.board_bits(), 68_800);
        assert!((plan.board_kbits() - 67.0).abs() < 0.5);
    }

    #[test]
    fn display_lists_regions() {
        let plan = RamPlan::plan(Technique::StateScan, &b14());
        let text = plan.to_string();
        assert!(text.contains("scan_states"));
        assert!(text.contains("board"));
    }
}
