//! Circuit instrumentation transforms.
//!
//! Each transform consumes a plain netlist and produces an
//! [`InstrumentedCircuit`]: a new netlist in which every original
//! flip-flop has been augmented (or replaced) by injection hardware, plus
//! a description of the added control ports so a campaign controller —
//! the software model in [`gate_level`](crate::gate_level), or a real one
//! — can drive it.
//!
//! Conventions shared by all three transforms:
//!
//! - original primary inputs come first (same order), control inputs
//!   after them;
//! - original primary outputs come first (same order), added observation
//!   outputs after them;
//! - the *k*-th original flip-flop maps to the *k*-th entry of each role
//!   vector in the port map, so fault lists translate 1:1.

pub mod mask_scan;
pub mod state_scan;
pub mod time_mux;

use seugrade_netlist::{FfIndex, Netlist};

/// An instrumented netlist plus its control-port directory.
#[derive(Clone, Debug)]
pub struct InstrumentedCircuit {
    netlist: Netlist,
    ports: PortMap,
}

impl InstrumentedCircuit {
    pub(crate) fn new(netlist: Netlist, ports: PortMap) -> Self {
        InstrumentedCircuit { netlist, ports }
    }

    /// The transformed netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Control-port directory.
    #[must_use]
    pub fn ports(&self) -> &PortMap {
        &self.ports
    }
}

/// Indices of the added control inputs/outputs and the flip-flop role
/// map of an instrumented circuit.
///
/// All `*_in` values index the instrumented netlist's primary inputs;
/// `*_out` values index its primary outputs. `None` means the technique
/// does not use that port.
#[derive(Clone, Debug, Default)]
pub struct PortMap {
    /// Number of original (functional) inputs.
    pub num_orig_inputs: usize,
    /// Number of original (functional) outputs.
    pub num_orig_outputs: usize,
    /// Serial data into the mask / shadow scan chain.
    pub scan_in: Option<usize>,
    /// Shift enable for the mask / shadow scan chain.
    pub scan_en: Option<usize>,
    /// Capture pulse: copy circuit state into the shadow chain
    /// (state-scan only).
    pub capture: Option<usize>,
    /// Transfer pulse: load shadow/checkpoint state into the circuit
    /// flip-flops (state-scan: shadow→circuit; time-mux: state→golden).
    pub load_state: Option<usize>,
    /// Checkpoint pulse: golden→state (time-mux only).
    pub save_state: Option<usize>,
    /// Injection pulse.
    pub inject: Option<usize>,
    /// Select the faulty copy as the combinational network's state source
    /// (time-mux only).
    pub sel_faulty: Option<usize>,
    /// Clock-enable of the golden copy (time-mux only).
    pub ena_golden: Option<usize>,
    /// Clock-enable of the faulty copy (time-mux only).
    pub ena_faulty: Option<usize>,
    /// Serial data out of the scan chain (output index).
    pub scan_out: Option<usize>,
    /// Golden/faulty state mismatch flag (output index, time-mux only).
    pub state_diff: Option<usize>,
    /// Per-original-FF instrument flip-flops, by role. `circuit_ffs` is
    /// the functional copy (mask-/state-scan) or the *faulty* copy
    /// (time-mux).
    pub circuit_ffs: Vec<FfIndex>,
    /// Mask flip-flops (mask-scan, time-mux).
    pub mask_ffs: Vec<FfIndex>,
    /// Shadow scan flip-flops (state-scan).
    pub shadow_ffs: Vec<FfIndex>,
    /// Golden-copy flip-flops (time-mux).
    pub golden_ffs: Vec<FfIndex>,
    /// Checkpoint flip-flops (time-mux).
    pub state_ffs: Vec<FfIndex>,
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared helpers for instrumentation tests.

    use seugrade_netlist::Netlist;
    use seugrade_sim::{CompiledSim, SimState};

    /// Drives an instrumented circuit with named control values.
    pub struct Driver {
        pub sim: CompiledSim,
        pub st: SimState,
        num_inputs: usize,
        pub inputs: Vec<bool>,
    }

    impl Driver {
        pub fn new(netlist: &Netlist) -> Self {
            let sim = CompiledSim::new(netlist);
            let st = sim.new_state();
            let num_inputs = netlist.num_inputs();
            Driver { sim, st, num_inputs, inputs: vec![false; netlist.num_inputs()] }
        }

        pub fn set(&mut self, idx: usize, v: bool) {
            assert!(idx < self.num_inputs);
            self.inputs[idx] = v;
        }

        pub fn set_functional(&mut self, vector: &[bool]) {
            self.inputs[..vector.len()].copy_from_slice(vector);
        }

        /// One clock: eval with current inputs, capture outputs, step.
        pub fn clock(&mut self) -> Vec<bool> {
            let v = self.inputs.clone();
            self.sim.set_inputs(&mut self.st, &v);
            self.sim.eval(&mut self.st);
            let out = self.sim.outputs_lane(&self.st, 0);
            self.sim.step(&mut self.st);
            out
        }

        /// Eval-only peek at outputs without clocking.
        pub fn peek(&mut self) -> Vec<bool> {
            let v = self.inputs.clone();
            self.sim.set_inputs(&mut self.st, &v);
            self.sim.eval(&mut self.st);
            self.sim.outputs_lane(&self.st, 0)
        }

        pub fn state(&self) -> Vec<bool> {
            self.sim.state_lane(&self.st, 0)
        }
    }
}
