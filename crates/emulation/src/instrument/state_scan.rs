//! State-scan instrumentation (the paper's second technique).
//!
//! Every circuit flip-flop gets a **shadow** flip-flop; the shadows form
//! a scan chain that can (a) be serially filled with an arbitrary state
//! (`scan_en`/`scan_in`), (b) capture the circuit state in one pulse
//! (`capture`) and (c) be transferred into the circuit flip-flops in one
//! pulse (`load_state`).
//!
//! A fault `(ff, t)` is emulated by scanning in the golden state
//! `S_t ⊕ e_ff` (precomputed by the golden run, stored in campaign RAM —
//! the paper's dominant 7,289-kbit region), pulsing `load_state`, and
//! running the test bench *from cycle `t`*, skipping the prefix replay
//! that mask-scan pays for. The scan-out side (`scan_out`) simultaneously
//! ejects the previous fault's captured end state, which the controller
//! compares against the golden end state to split latent from silent —
//! overlap that costs zero extra cycles.

use seugrade_netlist::{CellKind, FfIndex, Netlist};

use super::{InstrumentedCircuit, PortMap};

/// Applies the state-scan transform.
///
/// Adds 4 control inputs (`scan_in`, `scan_en`, `capture`, `load_state`),
/// 1 observation output (`scan_out`) and one shadow flip-flop per
/// original flip-flop (2× total flip-flops, matching Table 1's ~101 % FF
/// overhead).
///
/// # Panics
///
/// Panics if the input netlist has no flip-flops.
#[must_use]
pub fn instrument(old: &Netlist) -> InstrumentedCircuit {
    assert!(old.num_ffs() > 0, "state-scan needs at least one flip-flop");
    let mut b = seugrade_netlist::NetlistBuilder::new(format!("{}_statescan", old.name()));
    let mut map = vec![seugrade_netlist::SigId::new(0); old.num_cells()];

    for (sig, name) in old.inputs().iter().zip(old.input_names()) {
        map[sig.index()] = b.input(name.clone());
    }
    let scan_in = b.input("ssc_scan_in");
    let scan_en = b.input("ssc_scan_en");
    let capture = b.input("ssc_capture");
    let load_state = b.input("ssc_load_state");
    let base = old.num_inputs();

    let mut circuit_ffs = Vec::with_capacity(old.num_ffs());
    let mut shadow_ffs = Vec::with_capacity(old.num_ffs());
    let mut circuit_q = Vec::with_capacity(old.num_ffs());
    let mut shadow_q = Vec::with_capacity(old.num_ffs());
    for (k, &ff) in old.ffs().iter().enumerate() {
        let CellKind::Dff { init } = old.cell(ff).kind() else { unreachable!() };
        let q = b.dff(init);
        b.name_signal(q, format!("u{k}_ff"));
        circuit_ffs.push(FfIndex::new(2 * k));
        circuit_q.push(q);
        let s = b.dff(false);
        b.name_signal(s, format!("u{k}_shadow"));
        shadow_ffs.push(FfIndex::new(2 * k + 1));
        shadow_q.push(s);
        map[ff.index()] = q;
    }

    for (sig, cell) in old.iter_cells() {
        if let CellKind::Const(v) = cell.kind() {
            map[sig.index()] = b.constant(v);
        }
    }
    let order = old.levelize().expect("validated netlist");
    for &sig in order.order() {
        let cell = old.cell(sig);
        let CellKind::Gate(kind) = cell.kind() else { unreachable!() };
        let pins: Vec<_> = cell.pins().iter().map(|p| map[p.index()]).collect();
        map[sig.index()] = b.gate(kind, &pins);
    }

    for (k, &ff) in old.ffs().iter().enumerate() {
        let d_orig = map[old.cell(ff).pins()[0].index()];
        // shadow: capture beats shift beats hold.
        let prev = if k == 0 { scan_in } else { shadow_q[k - 1] };
        let shifted = b.mux(scan_en, shadow_q[k], prev);
        let shadow_d = b.mux(capture, shifted, circuit_q[k]);
        b.connect_dff(shadow_q[k], shadow_d).expect("shadow dff wiring");
        // circuit: load_state beats normal operation.
        let d_new = b.mux(load_state, d_orig, shadow_q[k]);
        b.connect_dff(circuit_q[k], d_new).expect("circuit dff wiring");
    }

    for (name, sig) in old.outputs() {
        b.output(name.clone(), map[sig.index()]);
    }
    b.output("ssc_scan_out", *shadow_q.last().expect("at least one ff"));

    let netlist = b.finish().expect("state-scan instrumentation is valid");
    let ports = PortMap {
        num_orig_inputs: old.num_inputs(),
        num_orig_outputs: old.num_outputs(),
        scan_in: Some(base),
        scan_en: Some(base + 1),
        capture: Some(base + 2),
        load_state: Some(base + 3),
        scan_out: Some(old.num_outputs()),
        circuit_ffs,
        shadow_ffs,
        ..PortMap::default()
    };
    InstrumentedCircuit::new(netlist, ports)
}

#[cfg(test)]
mod tests {
    use seugrade_circuits::generators;
    use seugrade_sim::{CompiledSim, Testbench};

    use crate::instrument::test_support::Driver;
    use super::*;

    #[test]
    fn structural_overheads() {
        let old = generators::lfsr(8, &[7, 5, 4, 3]);
        let inst = instrument(&old);
        assert_eq!(inst.netlist().num_ffs(), 16);
        assert_eq!(inst.netlist().num_inputs(), old.num_inputs() + 4);
        assert_eq!(inst.netlist().num_outputs(), old.num_outputs() + 1);
    }

    #[test]
    fn idle_instrument_tracks_original() {
        let old = generators::lfsr(5, &[4, 2]);
        let inst = instrument(&old);
        let golden = CompiledSim::new(&old).run_golden(&Testbench::constant_low(0, 25));
        let mut drv = Driver::new(inst.netlist());
        for t in 0..25 {
            let out = drv.clock();
            assert_eq!(&out[..old.num_outputs()], golden.output_at(t), "cycle {t}");
        }
    }

    #[test]
    fn scan_in_then_load_sets_circuit_state() {
        let old = generators::shift_register(4);
        let inst = instrument(&old);
        let p = inst.ports().clone();
        let mut drv = Driver::new(inst.netlist());
        // Scan pattern 1,0,1,1 (MSB-first into the chain: the value for
        // the *last* ff enters first).
        let target = [true, false, true, true];
        drv.set(p.scan_en.unwrap(), true);
        for &bit in target.iter().rev() {
            drv.set(p.scan_in.unwrap(), bit);
            drv.clock();
        }
        drv.set(p.scan_en.unwrap(), false);
        // Shadows hold the pattern; transfer.
        drv.set(p.load_state.unwrap(), true);
        drv.clock();
        drv.set(p.load_state.unwrap(), false);
        let st = drv.state();
        let circuit: Vec<bool> = p.circuit_ffs.iter().map(|f| st[f.index()]).collect();
        assert_eq!(circuit, target);
    }

    #[test]
    fn capture_then_scan_out_reads_state() {
        let old = generators::counter(3);
        let inst = instrument(&old);
        let p = inst.ports().clone();
        let mut drv = Driver::new(inst.netlist());
        // Run 5 cycles: counter = 5 = 101.
        for _ in 0..5 {
            drv.clock();
        }
        drv.set(p.capture.unwrap(), true);
        drv.clock();
        drv.set(p.capture.unwrap(), false);
        // Counter keeps running but the shadow now holds 5; scan it out.
        drv.set(p.scan_en.unwrap(), true);
        let mut bits = Vec::new();
        for _ in 0..3 {
            let out = drv.peek();
            bits.push(out[p.scan_out.unwrap()]);
            drv.clock();
        }
        // Chain tail is the last ff (bit 2); shifting ejects bit2, bit1, bit0.
        assert_eq!(bits, vec![true, false, true], "captured 5 = 101");
    }

    #[test]
    fn load_state_overrides_normal_next_state() {
        // Counter would advance to 1, but loading zeros must hold it at 0.
        let old = generators::counter(4);
        let inst = instrument(&old);
        let p = inst.ports().clone();
        let mut drv = Driver::new(inst.netlist());
        drv.set(p.load_state.unwrap(), true);
        drv.clock(); // shadows are all 0 -> circuit stays 0
        drv.set(p.load_state.unwrap(), false);
        let st = drv.state();
        assert!(p.circuit_ffs.iter().all(|f| !st[f.index()]));
    }

    #[test]
    fn simultaneous_scan_in_and_out_overlap() {
        // While scanning in a new state, the old captured state leaves
        // through scan_out: verify both data streams are intact.
        let old = generators::shift_register(3);
        let inst = instrument(&old);
        let p = inst.ports().clone();
        let mut drv = Driver::new(inst.netlist());
        // Put 1s into the circuit (din=1 for 3 cycles).
        drv.set_functional(&[true]);
        drv.clock();
        drv.clock();
        drv.clock();
        // Capture (all ones).
        drv.set(p.capture.unwrap(), true);
        drv.clock();
        drv.set(p.capture.unwrap(), false);
        // Scan in zeros while reading out ones.
        drv.set(p.scan_en.unwrap(), true);
        drv.set(p.scan_in.unwrap(), false);
        let mut ejected = Vec::new();
        for _ in 0..3 {
            let out = drv.peek();
            ejected.push(out[p.scan_out.unwrap()]);
            drv.clock();
        }
        assert_eq!(ejected, vec![true, true, true], "old state out");
        let st = drv.state();
        assert!(p.shadow_ffs.iter().all(|f| !st[f.index()]), "new state in");
    }
}
