//! Mask-scan instrumentation (the paper's first technique, derived from
//! the host-driven approach of Civera et al. \[2\], made autonomous).
//!
//! Every circuit flip-flop gets a companion **mask** flip-flop; the mask
//! flip-flops form a scan chain. A fault is injected by (a) positioning a
//! one-hot pattern in the mask chain (`scan_en`/`scan_in`) and (b)
//! pulsing `inject` during the cycle *before* the target cycle, which
//! XORs the masked flip-flop's data input:
//!
//! ```text
//! ff.d' = ff.d ⊕ (inject ∧ mask_q)
//! ```
//!
//! The faulty run must replay the test bench from cycle 0 for every
//! fault — the cost that the state-scan and time-multiplexed techniques
//! remove.

use seugrade_netlist::{CellKind, FfIndex, Netlist};

use super::{InstrumentedCircuit, PortMap};

/// Applies the mask-scan transform.
///
/// Adds 3 control inputs (`scan_in`, `scan_en`, `inject`), 1 observation
/// output (`scan_out`) and exactly one mask flip-flop per original
/// flip-flop (2× total flip-flops, matching Table 1's ~102 % FF
/// overhead).
///
/// # Panics
///
/// Panics if the input netlist has no flip-flops (nothing to inject
/// into).
#[must_use]
pub fn instrument(old: &Netlist) -> InstrumentedCircuit {
    assert!(old.num_ffs() > 0, "mask-scan needs at least one flip-flop");
    let mut b = seugrade_netlist::NetlistBuilder::new(format!("{}_maskscan", old.name()));
    let mut map = vec![seugrade_netlist::SigId::new(0); old.num_cells()];

    // 1. Original inputs, in order.
    for (sig, name) in old.inputs().iter().zip(old.input_names()) {
        map[sig.index()] = b.input(name.clone());
    }
    // 2. Control inputs.
    let scan_in = b.input("msk_scan_in");
    let scan_en = b.input("msk_scan_en");
    let inject = b.input("msk_inject");
    let scan_in_idx = old.num_inputs();
    let scan_en_idx = old.num_inputs() + 1;
    let inject_idx = old.num_inputs() + 2;

    // 3. Instrument flip-flops (circuit copy + mask), in original order.
    let mut circuit_ffs = Vec::with_capacity(old.num_ffs());
    let mut mask_ffs = Vec::with_capacity(old.num_ffs());
    let mut circuit_q = Vec::with_capacity(old.num_ffs());
    let mut mask_q = Vec::with_capacity(old.num_ffs());
    for (k, &ff) in old.ffs().iter().enumerate() {
        let CellKind::Dff { init } = old.cell(ff).kind() else { unreachable!() };
        let q = b.dff(init);
        b.name_signal(q, format!("u{k}_ff"));
        circuit_ffs.push(FfIndex::new(2 * k));
        circuit_q.push(q);
        let m = b.dff(false);
        b.name_signal(m, format!("u{k}_mask"));
        mask_ffs.push(FfIndex::new(2 * k + 1));
        mask_q.push(m);
        map[ff.index()] = q;
    }

    // 4. Constants and gates in topological order.
    for (sig, cell) in old.iter_cells() {
        if let CellKind::Const(v) = cell.kind() {
            map[sig.index()] = b.constant(v);
        }
    }
    let order = old.levelize().expect("validated netlist");
    for &sig in order.order() {
        let cell = old.cell(sig);
        let CellKind::Gate(kind) = cell.kind() else { unreachable!() };
        let pins: Vec<_> = cell.pins().iter().map(|p| map[p.index()]).collect();
        map[sig.index()] = b.gate(kind, &pins);
    }

    // 5. Wire the instrument.
    for (k, &ff) in old.ffs().iter().enumerate() {
        let d_orig = map[old.cell(ff).pins()[0].index()];
        // mask chain
        let prev = if k == 0 { scan_in } else { mask_q[k - 1] };
        let hold = b.mux(scan_en, mask_q[k], prev);
        b.connect_dff(mask_q[k], hold).expect("mask dff wiring");
        // injection XOR
        let arm = b.and2(inject, mask_q[k]);
        let d_new = b.xor2(d_orig, arm);
        b.connect_dff(circuit_q[k], d_new).expect("circuit dff wiring");
    }

    // 6. Outputs: originals then scan_out.
    for (name, sig) in old.outputs() {
        b.output(name.clone(), map[sig.index()]);
    }
    b.output("msk_scan_out", *mask_q.last().expect("at least one ff"));

    let netlist = b.finish().expect("mask-scan instrumentation is valid");
    let ports = PortMap {
        num_orig_inputs: old.num_inputs(),
        num_orig_outputs: old.num_outputs(),
        scan_in: Some(scan_in_idx),
        scan_en: Some(scan_en_idx),
        inject: Some(inject_idx),
        scan_out: Some(old.num_outputs()),
        circuit_ffs,
        mask_ffs,
        ..PortMap::default()
    };
    InstrumentedCircuit::new(netlist, ports)
}

#[cfg(test)]
mod tests {
    use seugrade_circuits::generators;
    use seugrade_netlist::FfIndex;

    use crate::instrument::test_support::Driver;
    use super::*;

    #[test]
    fn structural_overheads() {
        let old = generators::lfsr(8, &[7, 5, 4, 3]);
        let inst = instrument(&old);
        let n = inst.netlist();
        assert_eq!(n.num_ffs(), 16, "2x flip-flops");
        assert_eq!(n.num_inputs(), old.num_inputs() + 3);
        assert_eq!(n.num_outputs(), old.num_outputs() + 1);
        assert_eq!(inst.ports().circuit_ffs.len(), 8);
        assert_eq!(inst.ports().mask_ffs.len(), 8);
    }

    #[test]
    fn behaves_identically_when_idle() {
        // With all control inputs low the instrumented circuit must track
        // the original cycle for cycle.
        let old = generators::lfsr(6, &[5, 4]);
        let inst = instrument(&old);
        let sim_old = seugrade_sim::CompiledSim::new(&old);
        let tb = seugrade_sim::Testbench::constant_low(0, 30);
        let golden = sim_old.run_golden(&tb);

        let mut drv = Driver::new(inst.netlist());
        for t in 0..30 {
            let out = drv.clock();
            assert_eq!(&out[..old.num_outputs()], golden.output_at(t), "cycle {t}");
        }
    }

    #[test]
    fn scan_positions_the_mask() {
        let old = generators::shift_register(4);
        let inst = instrument(&old);
        let p = inst.ports().clone();
        let mut drv = Driver::new(inst.netlist());
        // Shift a single 1 into the chain head, then 2 more shifts to
        // reach mask position 2.
        drv.set(p.scan_in.unwrap(), true);
        drv.set(p.scan_en.unwrap(), true);
        drv.clock();
        drv.set(p.scan_in.unwrap(), false);
        drv.clock();
        drv.clock();
        drv.set(p.scan_en.unwrap(), false);
        let st = drv.state();
        let mask_vals: Vec<bool> = p.mask_ffs.iter().map(|f| st[f.index()]).collect();
        assert_eq!(mask_vals, vec![false, false, true, false]);
    }

    #[test]
    fn inject_flips_exactly_the_masked_ff() {
        let old = generators::shift_register(4);
        let inst = instrument(&old);
        let p = inst.ports().clone();
        let mut drv = Driver::new(inst.netlist());
        // Position mask at ff1 (one shift of a 1, then one more shift).
        drv.set(p.scan_in.unwrap(), true);
        drv.set(p.scan_en.unwrap(), true);
        drv.clock();
        drv.set(p.scan_in.unwrap(), false);
        drv.clock();
        drv.set(p.scan_en.unwrap(), false);
        // Pulse inject for one cycle with din=0: ff1 loads ff0 ^ 1.
        let before = drv.state();
        let ff0 = before[p.circuit_ffs[0].index()];
        drv.set(p.inject.unwrap(), true);
        drv.clock();
        drv.set(p.inject.unwrap(), false);
        let after = drv.state();
        assert_eq!(after[p.circuit_ffs[1].index()], !ff0, "ff1 flipped");
        // Other ffs shifted normally.
        assert_eq!(after[p.circuit_ffs[2].index()], before[p.circuit_ffs[1].index()]);
    }

    #[test]
    fn scan_out_is_chain_tail() {
        let old = generators::shift_register(3);
        let inst = instrument(&old);
        let p = inst.ports().clone();
        let mut drv = Driver::new(inst.netlist());
        drv.set(p.scan_in.unwrap(), true);
        drv.set(p.scan_en.unwrap(), true);
        // After 3 shifts the 1 reaches the tail and appears on scan_out.
        drv.clock();
        drv.clock();
        drv.clock();
        let out = drv.peek();
        assert!(out[p.scan_out.unwrap()], "scan_out sees the shifted 1");
    }

    #[test]
    fn ff_roles_interleave() {
        let old = generators::counter(3);
        let inst = instrument(&old);
        let p = inst.ports();
        assert_eq!(p.circuit_ffs, vec![FfIndex::new(0), FfIndex::new(2), FfIndex::new(4)]);
        assert_eq!(p.mask_ffs, vec![FfIndex::new(1), FfIndex::new(3), FfIndex::new(5)]);
    }
}
