//! Time-multiplexed instrumentation — the paper's Figure 1 and its key
//! original contribution.
//!
//! Every original flip-flop is replaced by a four-flip-flop *instrument*:
//!
//! ```text
//!              ┌────────────┐
//!   DataIn ───►│  GOLDEN ff │──GoldenQ──┐
//!   (shared    │  en: EnaG  │           │
//!   comb net)  └────────────┘           ├──► DataOut = sel_faulty
//!              ┌────────────┐           │      ? FaultyQ : GoldenQ
//!   DataIn ───►│  FAULTY ff │──FaultyQ──┘        (drives comb net)
//!              │  en: EnaF  │
//!              │  Inject:   │      ┌──────────┐
//!              │   GoldenQ ⊕│◄─────│  MASK ff │◄── scan chain
//!              │     MaskQ  │      └──────────┘
//!              └────────────┘      ┌──────────┐
//!   SaveState: StateQ ◄─ GoldenQ   │ STATE ff │  (checkpoint)
//!   LoadState: GoldenQ ◄─ StateQ   └──────────┘
//!   mismatch = GoldenQ ⊕ FaultyQ ──► OR-tree ──► state_diff
//! ```
//!
//! The golden and the faulty machine share one combinational network and
//! advance in **alternating clock cycles** (`sel_faulty` + the two
//! enables). Because both states are present simultaneously:
//!
//! - injection is a single-cycle parallel copy golden→faulty with the
//!   masked bit flipped — no test-bench replay, no scan;
//! - `state_diff` (the OR of all golden/faulty mismatches) detects fault
//!   *disappearance* the moment it happens, so silent faults terminate
//!   early — the mechanism behind the technique's order-of-magnitude win
//!   in Table 2;
//! - the STATE checkpoint restores the golden machine after each fault,
//!   so the campaign walks the test bench once instead of once per fault.

use seugrade_netlist::{CellKind, FfIndex, GateKind, Netlist};

use super::{InstrumentedCircuit, PortMap};

/// Applies the time-multiplexed transform.
///
/// Adds 8 control inputs, 2 observation outputs (`state_diff`,
/// `scan_out`) and exactly 4 flip-flops per original flip-flop (matching
/// Table 1's ~300 % FF overhead).
///
/// # Panics
///
/// Panics if the input netlist has no flip-flops.
#[must_use]
pub fn instrument(old: &Netlist) -> InstrumentedCircuit {
    assert!(old.num_ffs() > 0, "time-mux needs at least one flip-flop");
    let mut b = seugrade_netlist::NetlistBuilder::new(format!("{}_timemux", old.name()));
    let mut map = vec![seugrade_netlist::SigId::new(0); old.num_cells()];

    for (sig, name) in old.inputs().iter().zip(old.input_names()) {
        map[sig.index()] = b.input(name.clone());
    }
    let sel_faulty = b.input("tmx_sel_faulty");
    let ena_golden = b.input("tmx_ena_golden");
    let ena_faulty = b.input("tmx_ena_faulty");
    let inject = b.input("tmx_inject");
    let save_state = b.input("tmx_save_state");
    let load_state = b.input("tmx_load_state");
    let scan_en = b.input("tmx_scan_en");
    let scan_in = b.input("tmx_scan_in");
    let base = old.num_inputs();

    let n = old.num_ffs();
    let mut golden_ffs = Vec::with_capacity(n);
    let mut faulty_ffs = Vec::with_capacity(n);
    let mut mask_ffs = Vec::with_capacity(n);
    let mut state_ffs = Vec::with_capacity(n);
    let mut golden_q = Vec::with_capacity(n);
    let mut faulty_q = Vec::with_capacity(n);
    let mut mask_q = Vec::with_capacity(n);
    let mut state_q = Vec::with_capacity(n);
    for (k, &ff) in old.ffs().iter().enumerate() {
        let CellKind::Dff { init } = old.cell(ff).kind() else { unreachable!() };
        let g = b.dff(init);
        b.name_signal(g, format!("u{k}_golden"));
        golden_ffs.push(FfIndex::new(4 * k));
        golden_q.push(g);
        let f = b.dff(init);
        b.name_signal(f, format!("u{k}_faulty"));
        faulty_ffs.push(FfIndex::new(4 * k + 1));
        faulty_q.push(f);
        let m = b.dff(false);
        b.name_signal(m, format!("u{k}_mask"));
        mask_ffs.push(FfIndex::new(4 * k + 2));
        mask_q.push(m);
        let s = b.dff(init);
        b.name_signal(s, format!("u{k}_state"));
        state_ffs.push(FfIndex::new(4 * k + 3));
        state_q.push(s);
        // DataOut: the combinational network reads the selected copy.
        let data_out = b.mux(sel_faulty, g, f);
        b.name_signal(data_out, format!("u{k}_dataout"));
        map[ff.index()] = data_out;
    }

    for (sig, cell) in old.iter_cells() {
        if let CellKind::Const(v) = cell.kind() {
            map[sig.index()] = b.constant(v);
        }
    }
    let order = old.levelize().expect("validated netlist");
    for &sig in order.order() {
        let cell = old.cell(sig);
        let CellKind::Gate(kind) = cell.kind() else { unreachable!() };
        let pins: Vec<_> = cell.pins().iter().map(|p| map[p.index()]).collect();
        map[sig.index()] = b.gate(kind, &pins);
    }

    let mut mismatches = Vec::with_capacity(n);
    for (k, &ff) in old.ffs().iter().enumerate() {
        let d_orig = map[old.cell(ff).pins()[0].index()];
        // GOLDEN: enable, then checkpoint restore has priority.
        let g_run = b.mux(ena_golden, golden_q[k], d_orig);
        let g_d = b.mux(load_state, g_run, state_q[k]);
        b.connect_dff(golden_q[k], g_d).expect("golden wiring");
        // FAULTY: enable, then injection (parallel copy with flip) has
        // priority.
        let f_run = b.mux(ena_faulty, faulty_q[k], d_orig);
        let flip = b.xor2(golden_q[k], mask_q[k]);
        let f_d = b.mux(inject, f_run, flip);
        b.connect_dff(faulty_q[k], f_d).expect("faulty wiring");
        // MASK scan chain.
        let prev = if k == 0 { scan_in } else { mask_q[k - 1] };
        let m_d = b.mux(scan_en, mask_q[k], prev);
        b.connect_dff(mask_q[k], m_d).expect("mask wiring");
        // STATE checkpoint.
        let s_d = b.mux(save_state, state_q[k], golden_q[k]);
        b.connect_dff(state_q[k], s_d).expect("state wiring");
        // Comparator leg.
        mismatches.push(b.xor2(golden_q[k], faulty_q[k]));
    }
    let state_diff = if mismatches.len() == 1 {
        b.buf(mismatches[0])
    } else {
        b.gate(GateKind::Or, &mismatches)
    };

    for (name, sig) in old.outputs() {
        b.output(name.clone(), map[sig.index()]);
    }
    b.output("tmx_state_diff", state_diff);
    b.output("tmx_scan_out", *mask_q.last().expect("at least one ff"));

    let netlist = b.finish().expect("time-mux instrumentation is valid");
    let ports = PortMap {
        num_orig_inputs: old.num_inputs(),
        num_orig_outputs: old.num_outputs(),
        sel_faulty: Some(base),
        ena_golden: Some(base + 1),
        ena_faulty: Some(base + 2),
        inject: Some(base + 3),
        save_state: Some(base + 4),
        load_state: Some(base + 5),
        scan_en: Some(base + 6),
        scan_in: Some(base + 7),
        state_diff: Some(old.num_outputs()),
        scan_out: Some(old.num_outputs() + 1),
        circuit_ffs: faulty_ffs,
        mask_ffs,
        golden_ffs,
        state_ffs,
        ..PortMap::default()
    };
    InstrumentedCircuit::new(netlist, ports)
}

/// Figure 1 inventory: the per-flip-flop cell cost of the instrument —
/// 4 DFFs (golden, faulty, mask, state), 7 muxes (DataOut selector,
/// golden enable + restore, faulty enable + inject, mask shift, state
/// save) and 2 XORs (injection flip, mismatch comparator). Used by the
/// Figure-1 reproduction bench.
#[must_use]
pub fn figure1_inventory() -> [(&'static str, usize); 3] {
    [("dff", 4), ("mux", 7), ("xor", 2)]
}

#[cfg(test)]
mod tests {
    use seugrade_circuits::generators;
    use seugrade_sim::{CompiledSim, Testbench};

    use crate::instrument::test_support::Driver;
    use super::*;

    /// Idle control word: golden runs, faulty frozen.
    fn golden_running(drv: &mut Driver, p: &PortMap) {
        drv.set(p.sel_faulty.unwrap(), false);
        drv.set(p.ena_golden.unwrap(), true);
        drv.set(p.ena_faulty.unwrap(), false);
    }

    #[test]
    fn structural_overheads() {
        let old = generators::lfsr(8, &[7, 5, 4, 3]);
        let inst = instrument(&old);
        assert_eq!(inst.netlist().num_ffs(), 32, "4x flip-flops");
        assert_eq!(inst.netlist().num_inputs(), old.num_inputs() + 8);
        assert_eq!(inst.netlist().num_outputs(), old.num_outputs() + 2);
    }

    #[test]
    fn golden_copy_tracks_original() {
        let old = generators::lfsr(6, &[5, 4]);
        let inst = instrument(&old);
        let p = inst.ports().clone();
        let golden = CompiledSim::new(&old).run_golden(&Testbench::constant_low(0, 25));
        let mut drv = Driver::new(inst.netlist());
        golden_running(&mut drv, &p);
        for t in 0..25 {
            let out = drv.clock();
            assert_eq!(&out[..old.num_outputs()], golden.output_at(t), "cycle {t}");
        }
    }

    #[test]
    fn inject_copies_golden_with_flip() {
        let old = generators::counter(4);
        let inst = instrument(&old);
        let p = inst.ports().clone();
        let mut drv = Driver::new(inst.netlist());
        golden_running(&mut drv, &p);
        // Advance golden to 5.
        for _ in 0..5 {
            drv.clock();
        }
        // Mask at ff2 (two shifts after inserting 1... chain: insert then
        // shift once more to reach position 2? Insert puts it at position
        // 0; k shifts move to position k).
        drv.set(p.scan_en.unwrap(), true);
        drv.set(p.scan_in.unwrap(), true);
        drv.set(p.ena_golden.unwrap(), false); // freeze golden while scanning
        drv.clock();
        drv.set(p.scan_in.unwrap(), false);
        drv.clock();
        drv.clock();
        drv.set(p.scan_en.unwrap(), false);
        // Inject.
        drv.set(p.inject.unwrap(), true);
        drv.clock();
        drv.set(p.inject.unwrap(), false);
        let st = drv.state();
        let g: Vec<bool> = p.golden_ffs.iter().map(|f| st[f.index()]).collect();
        let f: Vec<bool> = p.circuit_ffs.iter().map(|f| st[f.index()]).collect();
        assert_eq!(g, vec![true, false, true, false], "golden still 5");
        assert_eq!(f, vec![true, false, false, false], "faulty = 5 ^ bit2 = 1");
        // state_diff must be up now.
        let out = drv.peek();
        assert!(out[p.state_diff.unwrap()]);
    }

    #[test]
    fn save_and_load_checkpoint_golden() {
        let old = generators::counter(4);
        let inst = instrument(&old);
        let p = inst.ports().clone();
        let mut drv = Driver::new(inst.netlist());
        golden_running(&mut drv, &p);
        for _ in 0..9 {
            drv.clock();
        }
        // checkpoint 9
        drv.set(p.save_state.unwrap(), true);
        drv.set(p.ena_golden.unwrap(), false);
        drv.clock();
        drv.set(p.save_state.unwrap(), false);
        // run golden 3 more cycles (12)
        drv.set(p.ena_golden.unwrap(), true);
        drv.clock();
        drv.clock();
        drv.clock();
        // restore
        drv.set(p.load_state.unwrap(), true);
        drv.clock();
        drv.set(p.load_state.unwrap(), false);
        let st = drv.state();
        let g: Vec<bool> = p.golden_ffs.iter().map(|f| st[f.index()]).collect();
        assert_eq!(g, vec![true, false, false, true], "restored to 9");
    }

    #[test]
    fn alternating_emulation_matches_two_machines() {
        // Run golden and faulty alternately for a counter, with faulty
        // injected +bit0 at value 3; both must advance independently.
        let old = generators::counter(3);
        let inst = instrument(&old);
        let p = inst.ports().clone();
        let mut drv = Driver::new(inst.netlist());
        golden_running(&mut drv, &p);
        for _ in 0..3 {
            drv.clock();
        }
        // inject with empty mask = plain copy golden->faulty (no flip).
        drv.set(p.ena_golden.unwrap(), false);
        drv.set(p.inject.unwrap(), true);
        drv.clock();
        drv.set(p.inject.unwrap(), false);
        // Alternate: faulty cycle then golden cycle, 4 times.
        for _ in 0..4 {
            // faulty cycle
            drv.set(p.sel_faulty.unwrap(), true);
            drv.set(p.ena_faulty.unwrap(), true);
            drv.set(p.ena_golden.unwrap(), false);
            drv.clock();
            // golden cycle
            drv.set(p.sel_faulty.unwrap(), false);
            drv.set(p.ena_faulty.unwrap(), false);
            drv.set(p.ena_golden.unwrap(), true);
            drv.clock();
        }
        let st = drv.state();
        let g: Vec<bool> = p.golden_ffs.iter().map(|f| st[f.index()]).collect();
        let f: Vec<bool> = p.circuit_ffs.iter().map(|f| st[f.index()]).collect();
        assert_eq!(g, vec![true, true, true], "golden 3+4=7");
        assert_eq!(f, vec![true, true, true], "faulty copy also 3+4=7");
        let out = drv.peek();
        assert!(!out[p.state_diff.unwrap()], "identical copies converge");
    }

    #[test]
    fn figure1_inventory_matches_structure() {
        // Instrument a 1-FF circuit and verify the per-FF cell counts of
        // Figure 1 (4 dffs, 7 muxes, 2 xors) plus the network.
        let old = generators::shift_register(1);
        let inst = instrument(&old);
        let stats = inst.netlist().stats();
        assert_eq!(stats.num_ffs(), 4);
        assert_eq!(stats.gate_count(GateKind::Mux), 7);
        assert_eq!(stats.gate_count(GateKind::Xor), 2);
        for (name, count) in figure1_inventory() {
            match name {
                "dff" => assert_eq!(stats.num_ffs(), count),
                "mux" => assert_eq!(stats.gate_count(GateKind::Mux), count),
                "xor" => assert_eq!(stats.gate_count(GateKind::Xor), count),
                _ => unreachable!(),
            }
        }
    }
}
