//! End-to-end autonomous fault-grading campaigns.

use std::fmt;

use seugrade_engine::{
    CampaignPlan, Engine, EngineError, EngineStats, PersistentSink, ResumeError, ResumeOptions,
    ShardPolicy, StreamAccumulator, VerdictSink,
};
use seugrade_faultsim::{Fault, FaultList, FaultOutcome, GradingSummary};
use seugrade_netlist::Netlist;
use seugrade_sim::{Testbench, TracePolicy};

use crate::controller::{
    mask_scan_timing, state_scan_timing, time_mux_timing, CampaignTiming, TimingAccumulator,
    TimingConfig,
};
use crate::ram::{RamParams, RamPlan};

/// The three autonomous fault-injection techniques of the paper.
///
/// The type now lives in [`seugrade_engine`] (campaign plans are
/// technique-aware); this re-export keeps its historical home valid.
pub use seugrade_engine::Technique;

/// Result of one autonomous campaign.
#[derive(Clone, Debug)]
pub struct EmulationReport {
    /// Which technique ran.
    pub technique: Technique,
    /// Fault classification tallies.
    pub summary: GradingSummary,
    /// Cycle-accurate timing (Table 2 row).
    pub timing: CampaignTiming,
    /// Memory plan (Table 1 RAM column).
    pub ram: RamPlan,
}

impl fmt::Display for EmulationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.2} ms, {:.2} us/fault | {}",
            self.technique,
            self.timing.millis(),
            self.timing.us_per_fault(),
            self.summary
        )
    }
}

/// A configured autonomous campaign for one circuit and test bench.
///
/// Construction grades the **exhaustive** fault list once through the
/// sharded [`seugrade_engine`] runtime (bit-identical to the serial
/// oracle at any thread count); [`run`](Self::run) then derives each
/// technique's report from the shared outcomes (the techniques classify
/// identically — a property the gate-level harness verifies — and differ
/// only in time and resources). Callers that already executed an engine
/// run can skip re-grading with [`from_graded`](Self::from_graded).
#[derive(Debug)]
pub struct AutonomousCampaign {
    faults: FaultList,
    outcomes: Vec<FaultOutcome>,
    summary: GradingSummary,
    num_inputs: usize,
    num_outputs: usize,
    num_ffs: usize,
    num_cycles: usize,
    timing_config: TimingConfig,
}

impl AutonomousCampaign {
    /// Grades the exhaustive fault list of `circuit` under `tb`.
    ///
    /// # Panics
    ///
    /// Panics if the test bench width does not match the circuit.
    #[must_use]
    pub fn new(circuit: &Netlist, tb: &Testbench) -> Self {
        Self::with_config(circuit, tb, TimingConfig::default())
    }

    /// Like [`new`](Self::new) with explicit timing overheads.
    #[must_use]
    pub fn with_config(circuit: &Netlist, tb: &Testbench, timing_config: TimingConfig) -> Self {
        let plan = CampaignPlan::builder(circuit, tb)
            .policy(ShardPolicy::auto())
            .build();
        let run = Engine::new(&plan).run(&plan);
        let (faults, outcomes) = run
            .into_single()
            .expect("exhaustive plans grade single faults");
        Self::from_graded(circuit, tb, faults, outcomes, timing_config)
    }

    /// Wraps an already-graded exhaustive campaign — typically the result
    /// of a [`seugrade_engine`] run — without grading anything again.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` is not parallel to `faults`, the fault list's
    /// originating fault-space dimensions do not match the circuit and
    /// test bench, or the test bench width does not match the circuit.
    #[must_use]
    pub fn from_graded(
        circuit: &Netlist,
        tb: &Testbench,
        faults: FaultList,
        outcomes: Vec<FaultOutcome>,
        timing_config: TimingConfig,
    ) -> Self {
        assert_eq!(
            faults.len(),
            outcomes.len(),
            "outcomes must be parallel to the fault list"
        );
        assert_eq!(
            tb.num_inputs(),
            circuit.num_inputs(),
            "test bench width does not match circuit"
        );
        // The timing models index cycles up to the fault list's horizon;
        // graded data from a different fault space would silently produce
        // wrong Table-2 numbers.
        assert_eq!(
            faults.num_ffs(),
            circuit.num_ffs(),
            "fault list flip-flop space does not match circuit"
        );
        assert_eq!(
            faults.num_cycles(),
            tb.num_cycles(),
            "fault list cycle space does not match test bench"
        );
        let summary = GradingSummary::from_outcomes(&outcomes);
        AutonomousCampaign {
            faults,
            outcomes,
            summary,
            num_inputs: circuit.num_inputs(),
            num_outputs: circuit.num_outputs(),
            num_ffs: circuit.num_ffs(),
            num_cycles: tb.num_cycles(),
            timing_config,
        }
    }

    /// The graded fault list (cycle-major exhaustive order).
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        self.faults.as_slice()
    }

    /// Per-fault outcomes, parallel to [`faults`](Self::faults).
    #[must_use]
    pub fn outcomes(&self) -> &[FaultOutcome] {
        &self.outcomes
    }

    /// The shared classification summary.
    #[must_use]
    pub fn summary(&self) -> &GradingSummary {
        &self.summary
    }

    /// Number of test-bench cycles.
    #[must_use]
    pub fn num_cycles(&self) -> usize {
        self.num_cycles
    }

    /// Number of circuit flip-flops.
    #[must_use]
    pub fn num_ffs(&self) -> usize {
        self.num_ffs
    }

    /// Grades the exhaustive fault space through the engine's
    /// **streaming** path under `trace_policy`, folding the technique
    /// timing models online — the fault list, the per-fault outcomes and
    /// (under [`TracePolicy::Checkpoint`]) the dense golden trace never
    /// exist in memory. The resulting [`StreamedCampaign`] produces the
    /// same per-technique [`EmulationReport`]s as a materialized
    /// campaign (a property the test suite enforces).
    ///
    /// # Panics
    ///
    /// Panics if the test bench width does not match the circuit or the
    /// policy is `Checkpoint(0)`.
    #[must_use]
    pub fn streamed(
        circuit: &Netlist,
        tb: &Testbench,
        timing_config: TimingConfig,
        trace_policy: TracePolicy,
    ) -> StreamedCampaign {
        let plan = CampaignPlan::builder(circuit, tb)
            .policy(ShardPolicy::auto())
            .trace_policy(trace_policy)
            .build();
        let engine = Engine::new(&plan);
        let (sink, stats): (CampaignSink, EngineStats) = engine.run_streamed_with(&plan);
        let timings = sink.finish_timings(&timing_config, tb.num_cycles(), circuit.num_ffs());
        StreamedCampaign {
            summary: sink.summary().clone(),
            digest: sink.digest(),
            timings,
            ram_params: RamParams {
                num_inputs: circuit.num_inputs(),
                num_outputs: circuit.num_outputs(),
                num_ffs: circuit.num_ffs(),
                num_cycles: tb.num_cycles(),
                num_faults: stats.faults,
            },
            stats,
        }
    }

    /// The **interruption-safe** variant of [`streamed`](Self::streamed):
    /// grades through the engine's resumable path, persisting campaign
    /// progress (including the online technique-timing fold) to the
    /// checkpoint configured in `opts` and honouring its cancellation
    /// token and chunk limit. When the run stops early the returned
    /// status carries the cursor instead of reports; invoking this again
    /// with [`ResumeOptions::resume_from`] continues where it stopped
    /// and — once complete — yields [`EmulationReport`]s identical to an
    /// uninterrupted [`streamed`](Self::streamed) campaign.
    ///
    /// # Panics
    ///
    /// Panics if the test bench width does not match the circuit or the
    /// policy is `Checkpoint(0)`.
    pub fn streamed_resumable(
        circuit: &Netlist,
        tb: &Testbench,
        timing_config: TimingConfig,
        trace_policy: TracePolicy,
        opts: &ResumeOptions,
    ) -> Result<StreamedCampaignStatus, EngineError> {
        let plan = CampaignPlan::builder(circuit, tb)
            .policy(ShardPolicy::auto())
            .trace_policy(trace_policy)
            .build();
        let engine = Engine::new(&plan);
        let run = engine.run_streamed_resumable_with::<CampaignSink>(&plan, opts)?;
        let (chunks_done, chunks_total) = (run.chunks_done, run.chunks_total);
        let (faults_done, faults_total) = (run.faults_done, run.faults_total);
        let (resumed_from, interrupted) = (run.resumed_from, run.interrupted);
        let complete = run.is_complete().then(|| {
            let timings =
                run.sink.finish_timings(&timing_config, tb.num_cycles(), circuit.num_ffs());
            StreamedCampaign {
                summary: run.sink.summary().clone(),
                digest: run.sink.digest(),
                timings,
                ram_params: RamParams {
                    num_inputs: circuit.num_inputs(),
                    num_outputs: circuit.num_outputs(),
                    num_ffs: circuit.num_ffs(),
                    num_cycles: tb.num_cycles(),
                    num_faults: faults_total,
                },
                stats: run.stats,
            }
        });
        Ok(StreamedCampaignStatus {
            complete,
            chunks_done,
            chunks_total,
            faults_done,
            faults_total,
            resumed_from,
            interrupted,
        })
    }

    /// Produces the emulation report for one technique.
    #[must_use]
    pub fn run(&self, technique: Technique) -> EmulationReport {
        let timing = match technique {
            Technique::MaskScan => mask_scan_timing(
                self.faults.as_slice(),
                &self.outcomes,
                self.num_cycles,
                &self.timing_config,
            ),
            Technique::StateScan => state_scan_timing(
                self.faults.as_slice(),
                &self.outcomes,
                self.num_cycles,
                self.num_ffs,
                &self.timing_config,
            ),
            Technique::TimeMux => time_mux_timing(
                self.faults.as_slice(),
                &self.outcomes,
                self.num_cycles,
                &self.timing_config,
            ),
        };
        let ram = RamPlan::plan(
            technique,
            &RamParams {
                num_inputs: self.num_inputs,
                num_outputs: self.num_outputs,
                num_ffs: self.num_ffs,
                num_cycles: self.num_cycles,
                num_faults: self.faults.len(),
            },
        );
        EmulationReport { technique, summary: self.summary.clone(), timing, ram }
    }
}

/// The engine-side sink of a streamed campaign: the engine's
/// order-independent verdict accumulator (class tallies, per-flip-flop
/// failure map, and the campaign's **verdict digest**) plus the online
/// technique timing fold. Order-insensitive by construction, as
/// [`VerdictSink`] requires.
///
/// Public so services multiplexing campaigns (`seugrade-serve`) can
/// drive [`Engine::run_streamed_resumable_with`] directly and read the
/// digest, summary and per-technique timings out of each job's sink.
#[derive(Debug, Default)]
pub struct CampaignSink {
    acc: StreamAccumulator,
    timing: TimingAccumulator,
}

impl CampaignSink {
    /// The classification tallies folded so far.
    #[must_use]
    pub fn summary(&self) -> &GradingSummary {
        self.acc.summary()
    }

    /// The order-independent verdict digest folded so far (equal to
    /// [`StreamAccumulator::digest`] over the same verdicts).
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.acc.digest()
    }

    /// Per-flip-flop failure counts folded so far.
    #[must_use]
    pub fn failure_map(&self) -> &[usize] {
        self.acc.failure_map()
    }

    /// Closes the online timing fold into the three per-technique
    /// timings, in [`Technique::ALL`] order.
    #[must_use]
    pub fn finish_timings(
        &self,
        config: &TimingConfig,
        num_cycles: usize,
        num_ffs: usize,
    ) -> [CampaignTiming; 3] {
        self.timing.finish(config, num_cycles, num_ffs)
    }
}

impl VerdictSink for CampaignSink {
    fn observe(&mut self, fault: Fault, outcome: FaultOutcome) {
        self.acc.observe(fault, outcome);
        self.timing.observe(fault, outcome);
    }

    fn merge(&mut self, other: Self) {
        self.acc.merge(other.acc);
        self.timing.merge(&other.timing);
    }
}

impl PersistentSink for CampaignSink {
    fn save_lines(&self, out: &mut Vec<String>) {
        self.acc.save_lines(out);
        out.push(self.timing.checkpoint_line());
    }

    fn restore_lines(lines: &[String], base_line: usize) -> Result<Self, ResumeError> {
        let corrupt = |off: usize, msg: String| ResumeError::Corrupt { line: base_line + off, msg };
        if lines.len() != 4 {
            return Err(corrupt(0, format!("expected 4 sink lines, found {}", lines.len())));
        }
        let acc = StreamAccumulator::restore_lines(&lines[..3], base_line)?;
        let timing = TimingAccumulator::from_checkpoint_line(&lines[3])
            .ok_or_else(|| corrupt(3, format!("malformed timing line {:?}", lines[3])))?;
        Ok(CampaignSink { acc, timing })
    }
}

/// A finished memory-bounded campaign: summary, per-technique timings
/// and RAM plans — no fault list, no outcome vector.
///
/// Produced by [`AutonomousCampaign::streamed`]; yields the same
/// [`EmulationReport`]s as the materialized path.
#[derive(Clone, Debug)]
pub struct StreamedCampaign {
    summary: GradingSummary,
    digest: u64,
    timings: [CampaignTiming; 3],
    ram_params: RamParams,
    stats: EngineStats,
}

impl StreamedCampaign {
    /// The shared classification summary.
    #[must_use]
    pub fn summary(&self) -> &GradingSummary {
        &self.summary
    }

    /// The order-independent verdict digest of the graded campaign —
    /// equal to [`StreamAccumulator::digest`] over the same fault space,
    /// so streamed, materialized and multiplexed (service) runs can be
    /// compared bit-for-bit.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// What the streamed grading run cost on the host.
    #[must_use]
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Produces the emulation report for one technique (identical to
    /// the materialized [`AutonomousCampaign::run`] over the same
    /// campaign).
    #[must_use]
    pub fn run(&self, technique: Technique) -> EmulationReport {
        let timing = *Technique::ALL
            .iter()
            .zip(&self.timings)
            .find(|(t, _)| **t == technique)
            .map(|(_, timing)| timing)
            .expect("one timing per technique");
        EmulationReport {
            technique,
            summary: self.summary.clone(),
            timing,
            ram: RamPlan::plan(technique, &self.ram_params),
        }
    }
}

/// Progress of a resumable streamed campaign
/// ([`AutonomousCampaign::streamed_resumable`]).
///
/// `complete` holds the finished [`StreamedCampaign`] once every chunk
/// has been graded (possibly across several interrupted-and-resumed
/// invocations); until then the cursor fields say how far the persisted
/// campaign has progressed.
#[derive(Clone, Debug)]
pub struct StreamedCampaignStatus {
    /// The finished campaign, once all chunks are graded.
    pub complete: Option<StreamedCampaign>,
    /// Chunks graded so far (cumulative across resumes).
    pub chunks_done: usize,
    /// Total chunks in the campaign.
    pub chunks_total: usize,
    /// Faults graded so far (cumulative across resumes).
    pub faults_done: usize,
    /// Total faults in the campaign.
    pub faults_total: usize,
    /// Cursor this invocation started from (0 for fresh runs).
    pub resumed_from: usize,
    /// True when the invocation stopped before the last chunk.
    pub interrupted: bool,
}

#[cfg(test)]
mod tests {
    use seugrade_circuits::generators;
    use seugrade_sim::Testbench;

    use super::*;

    fn campaign() -> AutonomousCampaign {
        let circuit = generators::lfsr(10, &[9, 6]);
        let tb = Testbench::constant_low(0, 30);
        AutonomousCampaign::new(&circuit, &tb)
    }

    #[test]
    fn exhaustive_fault_count() {
        let c = campaign();
        assert_eq!(c.faults().len(), 10 * 30);
        assert_eq!(c.summary().total(), 300);
    }

    #[test]
    fn all_techniques_report() {
        let c = campaign();
        for tech in Technique::ALL {
            let r = c.run(tech);
            assert_eq!(r.summary.total(), 300);
            assert!(r.timing.total_cycles > 0);
            assert_eq!(r.timing.num_faults, 300);
            assert!(r.ram.fpga_bits() > 0 || r.ram.board_bits() > 0);
            assert!(r.to_string().contains("us/fault"));
        }
    }

    #[test]
    fn summaries_are_technique_independent() {
        let c = campaign();
        let a = c.run(Technique::MaskScan).summary;
        let b = c.run(Technique::TimeMux).summary;
        assert_eq!(a, b);
    }

    #[test]
    fn time_mux_is_fastest_on_lfsr() {
        // An all-output LFSR detects every fault immediately, the ideal
        // case for early termination.
        let c = campaign();
        let mask = c.run(Technique::MaskScan).timing.total_cycles;
        let tmux = c.run(Technique::TimeMux).timing.total_cycles;
        assert!(tmux < mask, "tmux {tmux} >= mask {mask}");
    }

    #[test]
    fn native_classes() {
        assert_eq!(Technique::MaskScan.native_classes(), 2);
        assert_eq!(Technique::StateScan.native_classes(), 3);
        assert_eq!(Technique::TimeMux.native_classes(), 3);
    }

    #[test]
    #[should_panic(expected = "cycle space does not match")]
    fn from_graded_rejects_foreign_fault_space() {
        let circuit = generators::lfsr(4, &[3, 2]);
        let tb_long = Testbench::constant_low(0, 20);
        let tb_short = Testbench::constant_low(0, 10);
        let run = seugrade_engine::CampaignPlan::builder(&circuit, &tb_long)
            .build()
            .execute();
        let (faults, outcomes) = run.into_single().unwrap();
        // Same circuit, same input width, but a 10-cycle bench cannot
        // host 20-cycle graded data.
        let _ = AutonomousCampaign::from_graded(
            &circuit,
            &tb_short,
            faults,
            outcomes,
            crate::controller::TimingConfig::default(),
        );
    }

    #[test]
    fn from_graded_matches_fresh_campaign() {
        let circuit = generators::lfsr(10, &[9, 6]);
        let tb = Testbench::constant_low(0, 30);
        let fresh = AutonomousCampaign::new(&circuit, &tb);
        let run = seugrade_engine::CampaignPlan::builder(&circuit, &tb)
            .build()
            .execute();
        let (faults, outcomes) = run.into_single().unwrap();
        let wrapped = AutonomousCampaign::from_graded(
            &circuit,
            &tb,
            faults,
            outcomes,
            crate::controller::TimingConfig::default(),
        );
        assert_eq!(wrapped.summary(), fresh.summary());
        assert_eq!(wrapped.outcomes(), fresh.outcomes());
        for tech in Technique::ALL {
            assert_eq!(
                wrapped.run(tech).timing.total_cycles,
                fresh.run(tech).timing.total_cycles,
                "{tech}"
            );
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Technique::MaskScan.label(), "Mask Scan");
        assert_eq!(Technique::TimeMux.to_string(), "Time Multiplex.");
    }

    #[test]
    fn interrupted_and_resumed_campaign_matches_uninterrupted_reports() {
        let circuit = generators::lfsr(10, &[9, 6]);
        let tb = Testbench::constant_low(0, 30);
        let reference = AutonomousCampaign::streamed(
            &circuit,
            &tb,
            crate::controller::TimingConfig::default(),
            TracePolicy::Dense,
        );
        let path = std::env::temp_dir().join(format!(
            "seugrade-emulation-resume-{}.ckpt",
            std::process::id()
        ));
        // First invocation: stop after 7 chunks (of 30), persisting the
        // timing fold mid-flight.
        let mut opts = ResumeOptions::checkpoint_to(&path);
        opts.every = 3;
        opts.limit = Some(7);
        let partial = AutonomousCampaign::streamed_resumable(
            &circuit,
            &tb,
            crate::controller::TimingConfig::default(),
            TracePolicy::Dense,
            &opts,
        )
        .unwrap();
        assert!(partial.interrupted && partial.complete.is_none());
        assert_eq!(partial.chunks_done, 7);
        // Second invocation resumes from the file and finishes.
        let resumed = AutonomousCampaign::streamed_resumable(
            &circuit,
            &tb,
            crate::controller::TimingConfig::default(),
            TracePolicy::Dense,
            &ResumeOptions::resume_from(&path),
        )
        .unwrap();
        assert_eq!(resumed.resumed_from, 7);
        assert!(!resumed.interrupted);
        let done = resumed.complete.expect("campaign finished");
        assert_eq!(done.summary(), reference.summary());
        for tech in Technique::ALL {
            assert_eq!(done.run(tech).timing, reference.run(tech).timing, "{tech}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streamed_campaign_matches_materialized_reports() {
        let circuit = generators::lfsr(10, &[9, 6]);
        let tb = Testbench::constant_low(0, 30);
        let materialized = AutonomousCampaign::new(&circuit, &tb);
        for policy in [TracePolicy::Dense, TracePolicy::Checkpoint(8)] {
            let streamed = AutonomousCampaign::streamed(
                &circuit,
                &tb,
                crate::controller::TimingConfig::default(),
                policy,
            );
            assert_eq!(streamed.summary(), materialized.summary(), "{policy}");
            assert_eq!(streamed.stats().faults, 300);
            for tech in Technique::ALL {
                let s = streamed.run(tech);
                let m = materialized.run(tech);
                assert_eq!(s.timing, m.timing, "{policy} {tech}");
                assert_eq!(s.summary, m.summary, "{policy} {tech}");
                assert_eq!(s.ram.fpga_bits(), m.ram.fpga_bits(), "{policy} {tech}");
            }
        }
    }
}
