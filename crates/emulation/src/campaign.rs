//! End-to-end autonomous fault-grading campaigns.

use std::fmt;

use seugrade_faultsim::{Fault, FaultList, FaultOutcome, Grader, GradingSummary};
use seugrade_netlist::Netlist;
use seugrade_sim::Testbench;

use crate::controller::{
    mask_scan_timing, state_scan_timing, time_mux_timing, CampaignTiming, TimingConfig,
};
use crate::ram::{RamParams, RamPlan};

/// The three autonomous fault-injection techniques of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Mask flip-flop per circuit flip-flop; full test-bench replay per
    /// fault.
    MaskScan,
    /// Shadow scan chain inserting precomputed faulty states.
    StateScan,
    /// Figure-1 instruments; golden/faulty time multiplexing with
    /// checkpointing and early classification.
    TimeMux,
}

impl Technique {
    /// All techniques in the paper's presentation order.
    pub const ALL: [Technique; 3] =
        [Technique::MaskScan, Technique::StateScan, Technique::TimeMux];

    /// Table label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Technique::MaskScan => "Mask Scan",
            Technique::StateScan => "State Scan",
            Technique::TimeMux => "Time Multiplex.",
        }
    }

    /// Grading classes the technique can natively distinguish in
    /// hardware: mask-scan sees only failure/no-failure (1 result bit in
    /// Table 1), the others all three.
    #[must_use]
    pub fn native_classes(self) -> usize {
        match self {
            Technique::MaskScan => 2,
            _ => 3,
        }
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Result of one autonomous campaign.
#[derive(Clone, Debug)]
pub struct EmulationReport {
    /// Which technique ran.
    pub technique: Technique,
    /// Fault classification tallies.
    pub summary: GradingSummary,
    /// Cycle-accurate timing (Table 2 row).
    pub timing: CampaignTiming,
    /// Memory plan (Table 1 RAM column).
    pub ram: RamPlan,
}

impl fmt::Display for EmulationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.2} ms, {:.2} us/fault | {}",
            self.technique,
            self.timing.millis(),
            self.timing.us_per_fault(),
            self.summary
        )
    }
}

/// A configured autonomous campaign for one circuit and test bench.
///
/// Construction grades the **exhaustive** fault list once with the
/// bit-parallel oracle; [`run`](Self::run) then derives each technique's
/// report from the shared outcomes (the techniques classify identically —
/// a property the gate-level harness verifies — and differ only in time
/// and resources).
#[derive(Debug)]
pub struct AutonomousCampaign {
    faults: FaultList,
    outcomes: Vec<FaultOutcome>,
    summary: GradingSummary,
    num_inputs: usize,
    num_outputs: usize,
    num_ffs: usize,
    num_cycles: usize,
    timing_config: TimingConfig,
}

impl AutonomousCampaign {
    /// Grades the exhaustive fault list of `circuit` under `tb`.
    ///
    /// # Panics
    ///
    /// Panics if the test bench width does not match the circuit.
    #[must_use]
    pub fn new(circuit: &Netlist, tb: &Testbench) -> Self {
        Self::with_config(circuit, tb, TimingConfig::default())
    }

    /// Like [`new`](Self::new) with explicit timing overheads.
    #[must_use]
    pub fn with_config(circuit: &Netlist, tb: &Testbench, timing_config: TimingConfig) -> Self {
        let grader = Grader::new(circuit, tb);
        let faults = FaultList::exhaustive(circuit.num_ffs(), tb.num_cycles());
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        let outcomes = grader.run_parallel_threaded(faults.as_slice(), threads);
        let summary = GradingSummary::from_outcomes(&outcomes);
        AutonomousCampaign {
            faults,
            outcomes,
            summary,
            num_inputs: circuit.num_inputs(),
            num_outputs: circuit.num_outputs(),
            num_ffs: circuit.num_ffs(),
            num_cycles: tb.num_cycles(),
            timing_config,
        }
    }

    /// The graded fault list (cycle-major exhaustive order).
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        self.faults.as_slice()
    }

    /// Per-fault outcomes, parallel to [`faults`](Self::faults).
    #[must_use]
    pub fn outcomes(&self) -> &[FaultOutcome] {
        &self.outcomes
    }

    /// The shared classification summary.
    #[must_use]
    pub fn summary(&self) -> &GradingSummary {
        &self.summary
    }

    /// Number of test-bench cycles.
    #[must_use]
    pub fn num_cycles(&self) -> usize {
        self.num_cycles
    }

    /// Number of circuit flip-flops.
    #[must_use]
    pub fn num_ffs(&self) -> usize {
        self.num_ffs
    }

    /// Produces the emulation report for one technique.
    #[must_use]
    pub fn run(&self, technique: Technique) -> EmulationReport {
        let timing = match technique {
            Technique::MaskScan => mask_scan_timing(
                self.faults.as_slice(),
                &self.outcomes,
                self.num_cycles,
                &self.timing_config,
            ),
            Technique::StateScan => state_scan_timing(
                self.faults.as_slice(),
                &self.outcomes,
                self.num_cycles,
                self.num_ffs,
                &self.timing_config,
            ),
            Technique::TimeMux => time_mux_timing(
                self.faults.as_slice(),
                &self.outcomes,
                self.num_cycles,
                &self.timing_config,
            ),
        };
        let ram = RamPlan::plan(
            technique,
            &RamParams {
                num_inputs: self.num_inputs,
                num_outputs: self.num_outputs,
                num_ffs: self.num_ffs,
                num_cycles: self.num_cycles,
                num_faults: self.faults.len(),
            },
        );
        EmulationReport { technique, summary: self.summary.clone(), timing, ram }
    }
}

#[cfg(test)]
mod tests {
    use seugrade_circuits::generators;
    use seugrade_sim::Testbench;

    use super::*;

    fn campaign() -> AutonomousCampaign {
        let circuit = generators::lfsr(10, &[9, 6]);
        let tb = Testbench::constant_low(0, 30);
        AutonomousCampaign::new(&circuit, &tb)
    }

    #[test]
    fn exhaustive_fault_count() {
        let c = campaign();
        assert_eq!(c.faults().len(), 10 * 30);
        assert_eq!(c.summary().total(), 300);
    }

    #[test]
    fn all_techniques_report() {
        let c = campaign();
        for tech in Technique::ALL {
            let r = c.run(tech);
            assert_eq!(r.summary.total(), 300);
            assert!(r.timing.total_cycles > 0);
            assert_eq!(r.timing.num_faults, 300);
            assert!(r.ram.fpga_bits() > 0 || r.ram.board_bits() > 0);
            assert!(r.to_string().contains("us/fault"));
        }
    }

    #[test]
    fn summaries_are_technique_independent() {
        let c = campaign();
        let a = c.run(Technique::MaskScan).summary;
        let b = c.run(Technique::TimeMux).summary;
        assert_eq!(a, b);
    }

    #[test]
    fn time_mux_is_fastest_on_lfsr() {
        // An all-output LFSR detects every fault immediately, the ideal
        // case for early termination.
        let c = campaign();
        let mask = c.run(Technique::MaskScan).timing.total_cycles;
        let tmux = c.run(Technique::TimeMux).timing.total_cycles;
        assert!(tmux < mask, "tmux {tmux} >= mask {mask}");
    }

    #[test]
    fn native_classes() {
        assert_eq!(Technique::MaskScan.native_classes(), 2);
        assert_eq!(Technique::StateScan.native_classes(), 3);
        assert_eq!(Technique::TimeMux.native_classes(), 3);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Technique::MaskScan.label(), "Mask Scan");
        assert_eq!(Technique::TimeMux.to_string(), "Time Multiplex.");
    }
}
