//! Per-fault report export and campaign analytics.
//!
//! The aggregate [`GradingSummary`](crate::GradingSummary) answers "how
//! robust is the circuit"; re-design work (the paper's motivation) needs
//! the *per-fault dictionary* and its projections: which flip-flop,
//! which cycle, how fast faults surface.

use std::fmt::Write as _;

use crate::{Fault, FaultClass, FaultOutcome};

/// Serializes a graded fault list as CSV
/// (`ff,cycle,class,detect_cycle,converge_cycle`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn to_csv(faults: &[Fault], outcomes: &[FaultOutcome]) -> String {
    assert_eq!(faults.len(), outcomes.len(), "faults/outcomes length");
    let mut out = String::from("ff,cycle,class,detect_cycle,converge_cycle\n");
    for (f, o) in faults.iter().zip(outcomes) {
        let detect = o.detect_cycle.map_or(String::new(), |u| u.to_string());
        let converge = o.converge_cycle.map_or(String::new(), |u| u.to_string());
        writeln!(
            out,
            "{},{},{},{detect},{converge}",
            f.ff.index(),
            f.cycle,
            o.class.label()
        )
        .unwrap();
    }
    out
}

/// Histogram of failure *latency* (detection cycle − injection cycle):
/// `hist[d]` counts failures detected `d` cycles after injection.
///
/// Latency is the quantity that decides how much the early-terminating
/// emulation techniques save; time-mux's per-fault cost is
/// `2 × (latency + 1) + 4`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn detection_latency_histogram(faults: &[Fault], outcomes: &[FaultOutcome]) -> Vec<usize> {
    assert_eq!(faults.len(), outcomes.len(), "faults/outcomes length");
    let mut hist = Vec::new();
    for (f, o) in faults.iter().zip(outcomes) {
        if let Some(u) = o.detect_cycle {
            let d = (u - f.cycle) as usize;
            if hist.len() <= d {
                hist.resize(d + 1, 0);
            }
            hist[d] += 1;
        }
    }
    hist
}

/// Per-flip-flop class tallies: `rows[ff][class as usize]`.
///
/// The failure column is the "weak area" map the paper's introduction
/// says is hard to obtain from prototype-based injection.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn per_ff_breakdown(
    num_ffs: usize,
    faults: &[Fault],
    outcomes: &[FaultOutcome],
) -> Vec<[usize; 3]> {
    assert_eq!(faults.len(), outcomes.len(), "faults/outcomes length");
    let mut rows = vec![[0usize; 3]; num_ffs];
    for (f, o) in faults.iter().zip(outcomes) {
        let col = match o.class {
            FaultClass::Failure => 0,
            FaultClass::Latent => 1,
            FaultClass::Silent => 2,
        };
        rows[f.ff.index()][col] += 1;
    }
    rows
}

/// Mean cycles from injection to classification (the early-termination
/// quantity) over all faults, given the bench length.
///
/// # Panics
///
/// Panics if `outcomes` is empty or the slices differ in length.
#[must_use]
pub fn mean_classify_latency(
    faults: &[Fault],
    outcomes: &[FaultOutcome],
    num_cycles: usize,
) -> f64 {
    assert_eq!(faults.len(), outcomes.len(), "faults/outcomes length");
    assert!(!outcomes.is_empty(), "mean over zero faults");
    let total: u64 = faults
        .iter()
        .zip(outcomes)
        .map(|(f, o)| u64::from(o.classify_cycle(num_cycles) - f.cycle))
        .sum();
    total as f64 / outcomes.len() as f64
}

#[cfg(test)]
mod tests {
    use seugrade_netlist::FfIndex;

    use super::*;

    fn fixture() -> (Vec<Fault>, Vec<FaultOutcome>) {
        (
            vec![
                Fault::new(FfIndex::new(0), 0),
                Fault::new(FfIndex::new(1), 2),
                Fault::new(FfIndex::new(0), 5),
            ],
            vec![
                FaultOutcome::failure(3),
                FaultOutcome::silent(2),
                FaultOutcome::latent(),
            ],
        )
    }

    #[test]
    fn csv_rows() {
        let (f, o) = fixture();
        let csv = to_csv(&f, &o);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1], "0,0,failure,3,");
        assert_eq!(lines[2], "1,2,silent,,2");
        assert_eq!(lines[3], "0,5,latent,,");
    }

    #[test]
    fn latency_histogram() {
        let (f, o) = fixture();
        let hist = detection_latency_histogram(&f, &o);
        // one failure with latency 3
        assert_eq!(hist, vec![0, 0, 0, 1]);
    }

    #[test]
    fn breakdown_per_ff() {
        let (f, o) = fixture();
        let rows = per_ff_breakdown(2, &f, &o);
        assert_eq!(rows[0], [1, 1, 0]); // failure + latent
        assert_eq!(rows[1], [0, 0, 1]); // silent
    }

    #[test]
    fn mean_latency() {
        let (f, o) = fixture();
        // latencies: 3 (failure), 0 (silent), 9-5=4 (latent to end of 10)
        let mean = mean_classify_latency(&f, &o, 10);
        assert!((mean - 7.0 / 3.0).abs() < 1e-9, "{mean}");
    }
}
