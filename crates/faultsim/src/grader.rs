//! The fault-grading engines.

use std::sync::Arc;

use seugrade_netlist::Netlist;
use seugrade_sim::{
    broadcast, BitCache, BitSpan, CompiledSim, DiffScratch, GoldenTrace, Kernel, SimState,
    Testbench, TracePolicy, TraceWindow, WindowCache,
};

use crate::{Fault, FaultClass, FaultOutcome};

/// Default [`WindowCache`] capacity (in spans) for grading scratch
/// state: enough that a worker walking a cycle-major plan keeps its
/// current span plus a few neighbours hot, small enough that per-worker
/// memory stays `O(FFs × K)`.
pub const DEFAULT_WINDOW_CACHE_SPANS: usize = 8;

/// When a decided fault lane stops being simulated — the paper's
/// mask-scan early-abort knob.
///
/// Every grading engine compares the faulty lanes against the golden
/// machine *every cycle*, so a lane's verdict (first output mismatch =
/// failure, first state reconvergence = silent) is known the cycle it
/// happens. `Collapse` only controls what the engine does with the rest
/// of the horizon:
///
/// - [`Early`](Collapse::Early) (default) — a chunk stops simulating the
///   cycle its last live lane is decided, exactly like the autonomous
///   emulator releasing the circuit for the next fault.
/// - [`Horizon`](Collapse::Horizon) — the chunk runs to the observation
///   horizon regardless; verdicts still record only the *first* event
///   per lane.
///
/// Verdicts are bit-identical either way (the collapse-equivalence
/// suite enforces digest equality); only the work differs. `Horizon`
/// exists as the measurable baseline that shows what early collapse
/// buys.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Collapse {
    /// Retire lanes at their decision cycle; stop the chunk when all
    /// lanes are decided.
    #[default]
    Early,
    /// Simulate every chunk to the observation horizon.
    Horizon,
}

impl Collapse {
    /// Parses a collapse label: `on` (early) or `off` (horizon).
    #[must_use]
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "on" => Some(Collapse::Early),
            "off" => Some(Collapse::Horizon),
            _ => None,
        }
    }

    /// The label form parsed by [`from_label`](Self::from_label).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Collapse::Early => "on",
            Collapse::Horizon => "off",
        }
    }
}

/// Per-worker grading scratch: a reusable [`SimState`], a private
/// [`WindowCache`], the [`Collapse`] mode, and work counters.
///
/// One `GradeScratch` belongs to exactly one worker thread (no sharing,
/// no locks); the engine's thread pool creates one per worker via
/// [`Grader::new_scratch`] and rebuilds it after a contained panic.
/// Scratch configuration affects only *speed* — verdicts are identical
/// for every collapse mode and cache capacity.
#[derive(Debug)]
pub struct GradeScratch {
    st: SimState,
    cache: WindowCache,
    collapse: Collapse,
    sim_steps: u64,
    kernel: Kernel,
    diff: DiffScratch,
    bits: BitCache,
}

impl GradeScratch {
    /// The collapse mode this scratch grades under.
    #[must_use]
    pub fn collapse(&self) -> Collapse {
        self.collapse
    }

    /// The window cache (for hit/miss/replay statistics).
    #[must_use]
    pub fn cache(&self) -> &WindowCache {
        &self.cache
    }

    /// The golden bit-span cache used by the differential kernel.
    #[must_use]
    pub fn bit_cache(&self) -> &BitCache {
        &self.bits
    }

    /// The faulty-evaluation kernel this scratch grades with.
    #[must_use]
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Selects the faulty-evaluation [`Kernel`] (chainable; the default
    /// is [`Kernel::Auto`]). A pure speed knob — verdicts are identical
    /// for every kernel.
    #[must_use]
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Replaces the bit-span cache — the engine hands every worker a
    /// [`BitCache::clone_handle`] of one shared per-run store, so the
    /// pool replays each golden bit span once in total (chainable).
    #[must_use]
    pub fn with_bit_cache(mut self, bits: BitCache) -> Self {
        self.bits = bits;
        self
    }

    /// Faulty-machine cycles simulated through this scratch (one per
    /// `eval` of a chunk walk; golden replay cycles are counted by the
    /// [`cache`](Self::cache) instead). The collapse-equivalence suite
    /// uses this to prove a retired lane is never re-simulated.
    #[must_use]
    pub fn sim_steps(&self) -> u64 {
        self.sim_steps
    }
}

/// Fault grader: compiled simulator + golden trace for one
/// (circuit, test bench) pair, with serial and bit-parallel engines.
///
/// All engines implement the classification semantics documented at the
/// [crate root](crate); the test suite enforces that they agree fault by
/// fault.
///
/// # Golden-trace storage
///
/// The grader consumes the golden run exclusively through bounded
/// [`TraceWindow`]s, so it works identically under every
/// [`TracePolicy`]: with [`TracePolicy::Dense`] (the
/// [`new`](Self::new) default) windows borrow the stored trace, with
/// [`TracePolicy::Checkpoint`] ([`with_policy`](Self::with_policy)) a
/// grading shard holds only its current `K`-cycle window — memory
/// `O(FFs × cycles / K)` instead of `O(FFs × cycles)`, at the cost of
/// replaying the golden machine once per window. Verdicts are
/// bit-identical across policies (enforced by the agreement suites).
#[derive(Debug)]
pub struct Grader {
    sim: CompiledSim,
    tb: Testbench,
    golden: GoldenTrace,
    policy: TracePolicy,
}

impl Grader {
    /// Builds the grader with a dense golden trace (runs the golden
    /// reference once).
    ///
    /// # Panics
    ///
    /// Panics if the test bench width does not match the netlist's inputs.
    #[must_use]
    pub fn new(netlist: &Netlist, tb: &Testbench) -> Self {
        Self::with_policy(netlist, tb, TracePolicy::Dense)
    }

    /// Builds the grader with an explicit golden-trace storage policy.
    ///
    /// # Panics
    ///
    /// Panics if the test bench width does not match the netlist's
    /// inputs, or if the policy is `Checkpoint(0)`.
    #[must_use]
    pub fn with_policy(netlist: &Netlist, tb: &Testbench, policy: TracePolicy) -> Self {
        assert_eq!(
            tb.num_inputs(),
            netlist.num_inputs(),
            "test bench width does not match circuit"
        );
        let sim = CompiledSim::new(netlist);
        let golden = sim.run_golden_with(tb, policy);
        Grader { sim, tb: tb.clone(), golden, policy }
    }

    /// The golden reference trace.
    #[must_use]
    pub fn golden(&self) -> &GoldenTrace {
        &self.golden
    }

    /// The golden-trace storage policy this grader was built with.
    #[must_use]
    pub fn trace_policy(&self) -> TracePolicy {
        self.policy
    }

    /// The golden window the grading loops start from for an injection at
    /// cycle `t`: the whole trace under `Dense` (borrowed, zero copy),
    /// the checkpoint-aligned `K`-cycle span containing `t` under
    /// `Checkpoint(K)`.
    pub(crate) fn first_window(&self, t: usize) -> TraceWindow<'_> {
        let (start, end) = self.window_span(t);
        self.golden.window(&self.sim, &self.tb, start, end)
    }

    /// The `start..end` cycle span [`first_window`](Self::first_window)
    /// covers for an injection at cycle `t`.
    fn window_span(&self, t: usize) -> (usize, usize) {
        let n = self.tb.num_cycles();
        match self.policy {
            TracePolicy::Dense => (0, n),
            TracePolicy::Checkpoint(k) => {
                let start = t - t % k;
                (start, (start + k).min(n))
            }
        }
    }

    /// [`first_window`](Self::first_window) served through a
    /// [`WindowCache`].
    fn first_window_cached(&self, t: usize, cache: &mut WindowCache) -> TraceWindow<'_> {
        let (start, end) = self.window_span(t);
        self.golden.window_cached(&self.sim, &self.tb, start, end, cache)
    }

    /// [`next_window`](Self::next_window) served through a
    /// [`WindowCache`].
    fn next_window_cached(
        &self,
        win: &TraceWindow<'_>,
        cache: &mut WindowCache,
    ) -> TraceWindow<'_> {
        let n = self.tb.num_cycles();
        let start = win.end();
        let end = match self.policy {
            TracePolicy::Dense => n,
            TracePolicy::Checkpoint(k) => (start + k).min(n),
        };
        self.golden.window_cached(&self.sim, &self.tb, start, end, cache)
    }

    /// The window following `win` (checkpoint-aligned, so the underlying
    /// replay starts exactly at a stored checkpoint).
    pub(crate) fn next_window(&self, win: &TraceWindow<'_>) -> TraceWindow<'_> {
        let n = self.tb.num_cycles();
        let start = win.end();
        let end = match self.policy {
            TracePolicy::Dense => n,
            TracePolicy::Checkpoint(k) => (start + k).min(n),
        };
        self.golden.window(&self.sim, &self.tb, start, end)
    }

    /// The compiled simulator (shared with emulation models).
    #[must_use]
    pub fn sim(&self) -> &CompiledSim {
        &self.sim
    }

    /// The test bench.
    #[must_use]
    pub fn testbench(&self) -> &Testbench {
        &self.tb
    }

    // ------------------------------------------------------------------
    // Serial engine (reference implementation)
    // ------------------------------------------------------------------

    /// Grades one fault with the straightforward serial algorithm.
    ///
    /// The golden run is consumed through bounded windows, so this works
    /// — and produces bit-identical verdicts — under every
    /// [`TracePolicy`].
    ///
    /// # Panics
    ///
    /// Panics if the fault's cycle is outside the test bench or its
    /// flip-flop index outside the circuit.
    #[must_use]
    pub fn classify_serial(&self, fault: Fault) -> FaultOutcome {
        self.classify_serial_with(fault, Collapse::Early)
    }

    /// [`classify_serial`](Self::classify_serial) under an explicit
    /// [`Collapse`] mode. The verdict is identical either way —
    /// [`Collapse::Horizon`] merely keeps simulating the decided lane to
    /// the observation horizon, which is what the collapse benchmarks
    /// measure against.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`classify_serial`](Self::classify_serial).
    #[must_use]
    pub fn classify_serial_with(&self, fault: Fault, collapse: Collapse) -> FaultOutcome {
        let n_cycles = self.tb.num_cycles();
        let t = fault.cycle as usize;
        assert!(t < n_cycles, "fault cycle out of range");
        let mut win = self.first_window(t);
        let mut st = self.sim.new_state();
        self.sim.load_state(&mut st, win.state_at(t));
        self.sim.flip_ff_lane(&mut st, fault.ff, 0);
        let mut verdict = FaultOutcome::latent();
        let mut decided = false;
        for u in t..n_cycles {
            if u >= win.end() {
                win = self.next_window(&win);
            }
            self.sim.set_inputs(&mut st, self.tb.cycle(u));
            self.sim.eval(&mut st);
            if !decided && self.sim.outputs_lane(&st, 0) != win.output_at(u) {
                verdict = FaultOutcome::failure(u as u32);
                decided = true;
            }
            if decided && collapse == Collapse::Early {
                return verdict;
            }
            self.sim.step(&mut st);
            if !decided && self.sim.state_lane(&st, 0) == win.state_at(u + 1) {
                verdict = FaultOutcome::silent(u as u32);
                decided = true;
                if collapse == Collapse::Early {
                    return verdict;
                }
            }
        }
        verdict
    }

    /// Grades a fault list serially, in order.
    #[must_use]
    pub fn run_serial(&self, faults: &[Fault]) -> Vec<FaultOutcome> {
        faults.iter().map(|&f| self.classify_serial(f)).collect()
    }

    // ------------------------------------------------------------------
    // Bit-parallel engine (64 faults per pass)
    // ------------------------------------------------------------------

    /// Grades a fault list with the bit-parallel engine: faults sharing an
    /// injection cycle are packed 64 to a simulation pass. Outcomes are
    /// returned in the order of `faults`.
    #[must_use]
    pub fn run_parallel(&self, faults: &[Fault]) -> Vec<FaultOutcome> {
        let mut scratch = self.new_scratch(Collapse::Early, DEFAULT_WINDOW_CACHE_SPANS);
        let mut outcomes = vec![FaultOutcome::latent(); faults.len()];
        // Group indices by injection cycle, preserving order inside a group.
        let mut by_cycle: Vec<Vec<usize>> = vec![Vec::new(); self.tb.num_cycles()];
        for (i, f) in faults.iter().enumerate() {
            assert!(
                (f.cycle as usize) < self.tb.num_cycles(),
                "fault cycle out of range"
            );
            by_cycle[f.cycle as usize].push(i);
        }
        let lanes = self.chunk_lanes();
        let mut buf = Vec::with_capacity(lanes);
        let mut out_buf = [FaultOutcome::latent(); 64];
        for group in &by_cycle {
            for chunk in group.chunks(lanes) {
                buf.clear();
                buf.extend(chunk.iter().map(|&i| faults[i]));
                self.grade_chunk(&mut scratch, &buf, &mut out_buf[..chunk.len()]);
                for (k, &fi) in chunk.iter().enumerate() {
                    outcomes[fi] = out_buf[k];
                }
            }
        }
        outcomes
    }

    /// Grades up to 64 faults sharing one injection cycle in a single
    /// bit-parallel pass, reusing `st` as scratch and writing the verdicts
    /// into `out` (parallel to `chunk`).
    ///
    /// This is the shard-sized building block the batching engines are
    /// made of: an external runtime can cut any fault list into
    /// same-cycle chunks, grade each chunk on whichever thread with
    /// whichever scratch state, and the verdicts stay identical to the
    /// serial engine's — they depend only on the fault, never on lane
    /// placement or chunk composition.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is empty, holds more than 64 faults, mixes
    /// injection cycles, targets an out-of-range cycle, or if `out` has a
    /// different length than `chunk`.
    pub fn grade_cycle_chunk(&self, st: &mut SimState, chunk: &[Fault], out: &mut [FaultOutcome]) {
        let mut cache = WindowCache::disabled();
        let mut sim_steps = 0;
        self.grade_chunk_inner(
            st,
            &mut cache,
            Collapse::Early,
            &mut sim_steps,
            Kernel::Tape,
            chunk,
            out,
        );
    }

    /// The lane budget a same-cycle chunk should be cut to for this
    /// grader: 64 under [`TracePolicy::Dense`], 63 under
    /// [`TracePolicy::Checkpoint`] — checkpointed chunks reserve lane 63
    /// for the golden companion machine, which rides the same
    /// bit-parallel pass and replaces per-cycle window lookups entirely.
    #[must_use]
    pub fn chunk_lanes(&self) -> usize {
        match self.policy {
            TracePolicy::Dense => 64,
            TracePolicy::Checkpoint(_) => 63,
        }
    }

    /// Builds a per-worker [`GradeScratch`] with the given collapse mode
    /// and window-cache capacity (in spans; 0 disables caching).
    #[must_use]
    pub fn new_scratch(&self, collapse: Collapse, cache_spans: usize) -> GradeScratch {
        GradeScratch {
            st: self.sim.new_state(),
            cache: WindowCache::new(cache_spans),
            collapse,
            sim_steps: 0,
            kernel: Kernel::Auto,
            diff: self.sim.new_diff_scratch(),
            bits: BitCache::new(cache_spans),
        }
    }

    /// Builds a per-worker [`GradeScratch`] around an existing cache
    /// handle — the engine hands every worker in a pool a
    /// [`WindowCache::clone_handle`] of one shared per-run span store,
    /// so the whole pool replays each golden span once in total.
    #[must_use]
    pub fn new_scratch_with_cache(&self, collapse: Collapse, cache: WindowCache) -> GradeScratch {
        let bits = BitCache::new(cache.capacity());
        GradeScratch {
            st: self.sim.new_state(),
            cache,
            collapse,
            sim_steps: 0,
            kernel: Kernel::Auto,
            diff: self.sim.new_diff_scratch(),
            bits,
        }
    }

    /// [`grade_cycle_chunk`](Self::grade_cycle_chunk) against a
    /// [`GradeScratch`]: the scratch's window cache shares replayed
    /// golden spans across chunks, its collapse mode decides whether
    /// decided chunks stop early, and its counters record the work done.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`grade_cycle_chunk`](Self::grade_cycle_chunk).
    pub fn grade_chunk(
        &self,
        scratch: &mut GradeScratch,
        chunk: &[Fault],
        out: &mut [FaultOutcome],
    ) {
        let GradeScratch { st, cache, collapse, sim_steps, kernel, diff, bits } = scratch;
        match kernel.resolve() {
            Kernel::Differential => {
                self.grade_chunk_diff(diff, bits, *collapse, sim_steps, chunk, out);
            }
            k => self.grade_chunk_inner(st, cache, *collapse, sim_steps, k, chunk, out),
        }
    }

    /// Validates a same-cycle chunk, resets `out` to latent, and returns
    /// the shared injection cycle plus the used-lane mask.
    fn validate_chunk(&self, chunk: &[Fault], out: &mut [FaultOutcome]) -> (usize, u64) {
        assert!(!chunk.is_empty(), "empty chunk");
        assert!(chunk.len() <= 64, "a chunk holds at most 64 faults");
        assert_eq!(chunk.len(), out.len(), "outcome slice width");
        let t = chunk[0].cycle as usize;
        assert!(
            chunk.iter().all(|f| f.cycle as usize == t),
            "chunk mixes injection cycles"
        );
        assert!(t < self.tb.num_cycles(), "fault cycle out of range");
        for o in out.iter_mut() {
            *o = FaultOutcome::latent();
        }
        let lanes_used: u64 = if chunk.len() == 64 {
            !0
        } else {
            (1u64 << chunk.len()) - 1
        };
        (t, lanes_used)
    }

    /// Runs one full combinational settle with the chunk's kernel.
    fn eval_faulty(&self, st: &mut SimState, kernel: Kernel) {
        match kernel {
            Kernel::Generic => self.sim.eval_generic(st),
            _ => self.sim.eval(st),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn grade_chunk_inner(
        &self,
        st: &mut SimState,
        cache: &mut WindowCache,
        collapse: Collapse,
        sim_steps: &mut u64,
        kernel: Kernel,
        chunk: &[Fault],
        out: &mut [FaultOutcome],
    ) {
        let (t, lanes_used) = self.validate_chunk(chunk, out);
        let n_cycles = self.tb.num_cycles();
        if matches!(self.policy, TracePolicy::Checkpoint(_)) && chunk.len() < 64 {
            self.grade_chunk_companion(
                st, cache, collapse, sim_steps, kernel, chunk, out, lanes_used,
            );
            return;
        }

        let mut win = self.first_window_cached(t, cache);
        self.sim.load_state(st, win.state_at(t));
        for (lane, f) in chunk.iter().enumerate() {
            self.sim.flip_ff_lane(st, f.ff, lane as u32);
        }
        let mut undecided = lanes_used;
        for u in t..n_cycles {
            if u >= win.end() {
                win = self.next_window_cached(&win, cache);
            }
            self.sim.set_inputs(st, self.tb.cycle(u));
            self.eval_faulty(st, kernel);
            *sim_steps += 1;
            // Output mismatch mask across all outputs.
            let mut out_diff = 0u64;
            let golden_out = win.output_at(u);
            for (word, &g) in self.sim.outputs_raw(st).into_iter().zip(golden_out) {
                out_diff |= word ^ broadcast(g);
            }
            let newly_failed = out_diff & undecided;
            if newly_failed != 0 {
                for (lane, o) in out.iter_mut().enumerate() {
                    if newly_failed >> lane & 1 == 1 {
                        *o = FaultOutcome::failure(u as u32);
                    }
                }
                undecided &= !newly_failed;
                if undecided == 0 && collapse == Collapse::Early {
                    return;
                }
            }
            self.sim.step(st);
            // State convergence mask. Once every undecided lane has shown
            // a differing flip-flop, no lane can go silent this cycle, so
            // the rest of the scan is dead work — long latent tails hit
            // this break within a handful of words instead of walking the
            // full register file every cycle.
            let mut state_diff = 0u64;
            let golden_state = win.state_at(u + 1);
            for (ff, &g) in golden_state.iter().enumerate() {
                let word = self.sim.ff_raw(st, seugrade_netlist::FfIndex::new(ff));
                state_diff |= word ^ broadcast(g);
                if state_diff & undecided == undecided {
                    break;
                }
            }
            let newly_silent = !state_diff & undecided;
            if newly_silent != 0 {
                for (lane, o) in out.iter_mut().enumerate() {
                    if newly_silent >> lane & 1 == 1 {
                        *o = FaultOutcome::silent(u as u32);
                    }
                }
                undecided &= !newly_silent;
                if undecided == 0 && collapse == Collapse::Early {
                    return;
                }
            }
        }
    }

    /// The golden-companion fast path for checkpointed chunks of at most
    /// 63 faults: lane 63 is loaded with the golden state like every
    /// other lane but never gets a fault flipped in, so it *is* the
    /// golden machine, advanced for free by the same bit-parallel pass.
    /// Per-cycle comparison then reduces to XOR-ing each signal word
    /// against its own lane 63 broadcast (an arithmetic shift) — no
    /// window replay, no window memory, regardless of how far a latent
    /// tail walks. Only the injection-cycle state is fetched from the
    /// golden trace (one span, served by the cache and shared with the
    /// chunk's cycle-major neighbours).
    ///
    /// Verdicts are bit-identical to the windowed path: the compiled
    /// simulator is deterministic per lane, so lane 63 carries exactly
    /// the bits a replayed window would, and `lanes_used` keeps lane 63
    /// out of every verdict mask.
    #[allow(clippy::too_many_arguments)]
    fn grade_chunk_companion(
        &self,
        st: &mut SimState,
        cache: &mut WindowCache,
        collapse: Collapse,
        sim_steps: &mut u64,
        kernel: Kernel,
        chunk: &[Fault],
        out: &mut [FaultOutcome],
        lanes_used: u64,
    ) {
        let t = chunk[0].cycle as usize;
        let n_cycles = self.tb.num_cycles();
        let num_ffs = self.sim.num_ffs();
        {
            let win = self.first_window_cached(t, cache);
            self.sim.load_state(st, win.state_at(t));
        }
        for (lane, f) in chunk.iter().enumerate() {
            self.sim.flip_ff_lane(st, f.ff, lane as u32);
        }
        // Broadcast of a word's golden (lane 63) bit to all 64 lanes.
        let golden = |word: u64| ((word as i64) >> 63) as u64;
        let mut undecided = lanes_used;
        for u in t..n_cycles {
            self.sim.set_inputs(st, self.tb.cycle(u));
            self.eval_faulty(st, kernel);
            *sim_steps += 1;
            let mut out_diff = 0u64;
            for word in self.sim.outputs_raw(st) {
                out_diff |= word ^ golden(word);
            }
            let newly_failed = out_diff & undecided;
            if newly_failed != 0 {
                for (lane, o) in out.iter_mut().enumerate() {
                    if newly_failed >> lane & 1 == 1 {
                        *o = FaultOutcome::failure(u as u32);
                    }
                }
                undecided &= !newly_failed;
                if undecided == 0 && collapse == Collapse::Early {
                    return;
                }
            }
            self.sim.step(st);
            // Same short-circuit as the windowed path: stop scanning the
            // register file once every undecided lane has diverged.
            let mut state_diff = 0u64;
            for ff in 0..num_ffs {
                let word = self.sim.ff_raw(st, seugrade_netlist::FfIndex::new(ff));
                state_diff |= word ^ golden(word);
                if state_diff & undecided == undecided {
                    break;
                }
            }
            let newly_silent = !state_diff & undecided;
            if newly_silent != 0 {
                for (lane, o) in out.iter_mut().enumerate() {
                    if newly_silent >> lane & 1 == 1 {
                        *o = FaultOutcome::silent(u as u32);
                    }
                }
                undecided &= !newly_silent;
                if undecided == 0 && collapse == Collapse::Early {
                    return;
                }
            }
        }
    }

    /// The golden bit span covering cycle `t`: the checkpoint-aligned
    /// `K`-cycle span under `Checkpoint(K)`, a 64-cycle-aligned span
    /// under `Dense` (bounding span memory the same way checkpoints do).
    fn bit_span_for(&self, t: usize, bits: &mut BitCache) -> Arc<BitSpan> {
        let n = self.tb.num_cycles();
        let (start, end) = match self.policy {
            TracePolicy::Dense => {
                let start = t - t % 64;
                (start, (start + 64).min(n))
            }
            TracePolicy::Checkpoint(k) => {
                let start = t - t % k;
                (start, (start + k).min(n))
            }
        };
        self.golden.bit_span_cached(&self.sim, &self.tb, start, end, bits)
    }

    /// The differential (activity-driven) chunk walk: the faulty lanes
    /// are simulated **in deviation space** against bit-packed golden
    /// values, so per cycle only the gates reachable from the dirty
    /// frontier are evaluated — work proportional to the deviation cone,
    /// not the netlist. `out_diff` from the dev-space step *is* the
    /// failure mask, and a zero `state_diff` proves every lane
    /// reconverged without scanning a single register (the frontier is
    /// simply empty from then on).
    ///
    /// Verdict semantics are identical to the full-evaluation paths:
    /// failures are claimed before same-cycle silences, each lane
    /// records its first event only, and `sim_steps` counts one per
    /// walked cycle.
    fn grade_chunk_diff(
        &self,
        sc: &mut DiffScratch,
        bits: &mut BitCache,
        collapse: Collapse,
        sim_steps: &mut u64,
        chunk: &[Fault],
        out: &mut [FaultOutcome],
    ) {
        let (t, lanes_used) = self.validate_chunk(chunk, out);
        let n_cycles = self.tb.num_cycles();
        for (lane, f) in chunk.iter().enumerate() {
            self.sim.diff_seed(sc, f.ff, lane as u32);
        }
        let mut span = self.bit_span_for(t, bits);
        let mut undecided = lanes_used;
        for u in t..n_cycles {
            if u >= span.end() {
                span = self.bit_span_for(u, bits);
            }
            let (out_diff, state_diff) = self.sim.diff_cycle(sc, &span, u);
            *sim_steps += 1;
            let newly_failed = out_diff & undecided;
            if newly_failed != 0 {
                for (lane, o) in out.iter_mut().enumerate() {
                    if newly_failed >> lane & 1 == 1 {
                        *o = FaultOutcome::failure(u as u32);
                    }
                }
                undecided &= !newly_failed;
            }
            let newly_silent = !state_diff & undecided;
            if newly_silent != 0 {
                for (lane, o) in out.iter_mut().enumerate() {
                    if newly_silent >> lane & 1 == 1 {
                        *o = FaultOutcome::silent(u as u32);
                    }
                }
                undecided &= !newly_silent;
            }
            if undecided == 0 && collapse == Collapse::Early {
                break;
            }
        }
        self.sim.diff_reset(sc);
    }

    /// Multi-threaded bit-parallel grading: injection cycles are
    /// distributed over `threads` workers, each with its own simulator
    /// state. Outcomes are returned in the order of `faults` regardless
    /// of scheduling.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn run_parallel_threaded(&self, faults: &[Fault], threads: usize) -> Vec<FaultOutcome> {
        assert!(threads > 0, "need at least one thread");
        if threads == 1 || faults.len() < 128 {
            return self.run_parallel(faults);
        }
        // Partition fault indices by cycle, then deal cycles round-robin
        // to balance early (long-tail) and late (short-tail) injections.
        let mut by_cycle: Vec<Vec<usize>> = vec![Vec::new(); self.tb.num_cycles()];
        for (i, f) in faults.iter().enumerate() {
            by_cycle[f.cycle as usize].push(i);
        }
        let mut partitions: Vec<Vec<usize>> = vec![Vec::new(); threads];
        for (c, group) in by_cycle.into_iter().enumerate() {
            partitions[c % threads].extend(group);
        }

        let mut outcomes = vec![FaultOutcome::latent(); faults.len()];
        let chunks: Vec<(Vec<usize>, Vec<FaultOutcome>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = partitions
                .into_iter()
                .map(|part| {
                    scope.spawn(move || {
                        let subset: Vec<Fault> =
                            part.iter().map(|&i| faults[i]).collect();
                        let sub_outcomes = self.run_parallel(&subset);
                        (part, sub_outcomes)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        for (part, sub) in chunks {
            for (i, o) in part.into_iter().zip(sub) {
                outcomes[i] = o;
            }
        }
        outcomes
    }

    /// Per-flip-flop failure counts (a weak-area map, the re-design aid
    /// the paper's introduction motivates).
    #[must_use]
    pub fn failure_map(&self, faults: &[Fault], outcomes: &[FaultOutcome]) -> Vec<usize> {
        let mut map = vec![0usize; self.sim.num_ffs()];
        for (f, o) in faults.iter().zip(outcomes) {
            if o.class == FaultClass::Failure {
                map[f.ff.index()] += 1;
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use seugrade_circuits::generators::{self, RandomCircuitConfig};
    use seugrade_netlist::{FfIndex, NetlistBuilder};
    use seugrade_sim::Testbench;

    use crate::FaultList;
    use super::*;

    #[test]
    fn counter_faults_fail_immediately() {
        // Every counter bit is a primary output: any flip is visible at
        // its own injection cycle.
        let n = generators::counter(4);
        let tb = Testbench::constant_low(0, 10);
        let g = Grader::new(&n, &tb);
        for f in FaultList::exhaustive(4, 10).iter() {
            let o = g.classify_serial(f);
            assert_eq!(o.class, FaultClass::Failure, "{f}");
            assert_eq!(o.detect_cycle, Some(f.cycle), "{f}");
        }
    }

    #[test]
    fn shift_register_detection_latency() {
        // Flip bit i at cycle t; dout is bit w-1; the corrupted bit
        // reaches the output after (w-1-i) further cycles.
        let w = 6;
        let n = generators::shift_register(w);
        let cycles = 20;
        let tb = Testbench::random(1, cycles, 3);
        let g = Grader::new(&n, &tb);
        for i in 0..w {
            for t in 0..cycles as u32 {
                let o = g.classify_serial(Fault::new(FfIndex::new(i), t));
                let arrival = t + (w - 1 - i) as u32;
                if arrival < cycles as u32 {
                    assert_eq!(o.class, FaultClass::Failure, "ff{i}@{t}");
                    assert_eq!(o.detect_cycle, Some(arrival), "ff{i}@{t}");
                } else {
                    assert_eq!(o.class, FaultClass::Latent, "ff{i}@{t}");
                }
            }
        }
    }

    #[test]
    fn overwritten_ff_is_silent() {
        // q <= input every cycle; output independent of q.
        let mut b = NetlistBuilder::new("overwrite");
        let a = b.input("a");
        let q = b.dff(false);
        b.connect_dff(q, a).unwrap();
        b.output("y", a);
        let n = b.finish().unwrap();
        let tb = Testbench::random(1, 8, 5);
        let g = Grader::new(&n, &tb);
        for t in 0..8 {
            let o = g.classify_serial(Fault::new(FfIndex::new(0), t));
            assert_eq!(o.class, FaultClass::Silent, "cycle {t}");
            assert_eq!(o.converge_cycle, Some(t), "overwritten next cycle");
        }
    }

    #[test]
    fn unobserved_self_loop_is_latent() {
        let mut b = NetlistBuilder::new("latent");
        let a = b.input("a");
        let q = b.dff(false);
        b.connect_dff(q, q).unwrap(); // holds forever
        b.output("y", a); // q unobservable
        let n = b.finish().unwrap();
        let tb = Testbench::random(1, 8, 5);
        let g = Grader::new(&n, &tb);
        for t in 0..8 {
            let o = g.classify_serial(Fault::new(FfIndex::new(0), t));
            assert_eq!(o.class, FaultClass::Latent, "cycle {t}");
        }
    }

    #[test]
    fn masking_produces_silent_later() {
        // q <= q AND a: once `a` goes low, both golden and faulty collapse
        // to 0 -> convergence strictly after injection.
        let mut b = NetlistBuilder::new("mask");
        let a = b.input("a");
        let q = b.dff(true);
        let g1 = b.and2(q, a);
        b.connect_dff(q, g1).unwrap();
        b.output("y", a);
        let n = b.finish().unwrap();
        // a = 1,1,0,...
        let tb = Testbench::new(vec![
            vec![true],
            vec![true],
            vec![false],
            vec![false],
        ]);
        let g = Grader::new(&n, &tb);
        let o = g.classify_serial(Fault::new(FfIndex::new(0), 0));
        assert_eq!(o.class, FaultClass::Silent);
        assert_eq!(o.converge_cycle, Some(2), "converges when a drops");
    }

    #[test]
    fn parallel_matches_serial_on_small_circuits() {
        for name in ["b01s", "b02s", "b06s"] {
            let n = seugrade_circuits::registry::build(name).unwrap();
            let tb = Testbench::random(n.num_inputs(), 25, 11);
            let g = Grader::new(&n, &tb);
            let faults = FaultList::exhaustive(n.num_ffs(), 25);
            let serial = g.run_serial(faults.as_slice());
            let parallel = g.run_parallel(faults.as_slice());
            assert_eq!(serial, parallel, "{name}");
        }
    }

    #[test]
    fn parallel_matches_serial_on_random_circuits() {
        for seed in 0..8 {
            let cfg = RandomCircuitConfig {
                num_ffs: 10,
                num_gates: 60,
                ..Default::default()
            };
            let n = generators::random_sequential(&cfg, seed);
            let tb = Testbench::random(n.num_inputs(), 30, seed + 100);
            let g = Grader::new(&n, &tb);
            let faults = FaultList::exhaustive(n.num_ffs(), 30);
            let serial = g.run_serial(faults.as_slice());
            let parallel = g.run_parallel(faults.as_slice());
            assert_eq!(serial, parallel, "seed {seed}");
        }
    }

    #[test]
    fn threaded_matches_single_thread() {
        let n = seugrade_circuits::registry::build("b03s").unwrap();
        let tb = Testbench::random(n.num_inputs(), 40, 13);
        let g = Grader::new(&n, &tb);
        let faults = FaultList::exhaustive(n.num_ffs(), 40);
        let one = g.run_parallel(faults.as_slice());
        let four = g.run_parallel_threaded(faults.as_slice(), 4);
        assert_eq!(one, four);
    }

    #[test]
    fn sampled_subset_consistent_with_exhaustive() {
        let n = seugrade_circuits::registry::build("b06s").unwrap();
        let tb = Testbench::random(n.num_inputs(), 30, 17);
        let g = Grader::new(&n, &tb);
        let full = FaultList::exhaustive(n.num_ffs(), 30);
        let all = g.run_parallel(full.as_slice());
        let sample = FaultList::sampled(n.num_ffs(), 30, 50, 23);
        let sampled = g.run_parallel(sample.as_slice());
        for (f, o) in sample.iter().zip(&sampled) {
            let idx = f.cycle as usize * n.num_ffs() + f.ff.index();
            assert_eq!(*o, all[idx], "{f}");
        }
    }

    #[test]
    fn failure_map_localizes_weak_ffs() {
        // Shift register: earlier bits (closer to input) have fewer
        // detected faults? Actually later bits detect sooner; with a long
        // bench every bit's faults all arrive. Use a short bench so the
        // *early* bits' faults stay latent.
        let n = generators::shift_register(8);
        let tb = Testbench::random(1, 6, 29);
        let g = Grader::new(&n, &tb);
        let faults = FaultList::exhaustive(8, 6);
        let outcomes = g.run_parallel(faults.as_slice());
        let map = g.failure_map(faults.as_slice(), &outcomes);
        // bit 7 (output) always fails; bit 0 needs 7 cycles to surface,
        // impossible within 6 cycles.
        assert_eq!(map[7], 6);
        assert_eq!(map[0], 0);
    }

    #[test]
    fn grade_cycle_chunk_matches_serial() {
        let n = seugrade_circuits::registry::build("b03s").unwrap();
        let tb = Testbench::random(n.num_inputs(), 20, 7);
        let g = Grader::new(&n, &tb);
        let mut st = g.sim().new_state();
        for t in 0..20u32 {
            let chunk: Vec<Fault> = (0..n.num_ffs())
                .map(|ff| Fault::new(FfIndex::new(ff), t))
                .collect();
            let mut out = vec![FaultOutcome::latent(); chunk.len()];
            g.grade_cycle_chunk(&mut st, &chunk, &mut out);
            for (f, o) in chunk.iter().zip(&out) {
                assert_eq!(*o, g.classify_serial(*f), "{f}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "mixes injection cycles")]
    fn mixed_cycle_chunk_rejected() {
        let n = generators::counter(2);
        let tb = Testbench::constant_low(0, 4);
        let g = Grader::new(&n, &tb);
        let mut st = g.sim().new_state();
        let chunk = [Fault::new(FfIndex::new(0), 0), Fault::new(FfIndex::new(1), 1)];
        let mut out = [FaultOutcome::latent(); 2];
        g.grade_cycle_chunk(&mut st, &chunk, &mut out);
    }

    #[test]
    fn checkpoint_policy_matches_dense_verdicts() {
        use seugrade_sim::TracePolicy;
        for name in ["b03s", "b06s"] {
            let n = seugrade_circuits::registry::build(name).unwrap();
            let tb = Testbench::random(n.num_inputs(), 25, 19);
            let dense = Grader::new(&n, &tb);
            let faults = FaultList::exhaustive(n.num_ffs(), 25);
            let reference = dense.run_serial(faults.as_slice());
            // K smaller than, dividing, not dividing, and exceeding the
            // bench length — every window geometry.
            for k in [1, 3, 5, 25, 64] {
                let cp = Grader::with_policy(&n, &tb, TracePolicy::Checkpoint(k));
                assert_eq!(cp.trace_policy(), TracePolicy::Checkpoint(k));
                assert_eq!(cp.run_serial(faults.as_slice()), reference, "{name} K={k} serial");
                assert_eq!(cp.run_parallel(faults.as_slice()), reference, "{name} K={k} parallel");
                assert_eq!(
                    cp.run_parallel_threaded(faults.as_slice(), 3),
                    reference,
                    "{name} K={k} threaded"
                );
            }
        }
    }

    #[test]
    fn checkpoint_golden_memory_is_bounded() {
        use seugrade_sim::TracePolicy;
        let n = seugrade_circuits::registry::build("b03s").unwrap();
        let tb = Testbench::random(n.num_inputs(), 128, 3);
        let dense = Grader::new(&n, &tb);
        let cp = Grader::with_policy(&n, &tb, TracePolicy::Checkpoint(16));
        // 128/16 + 1 checkpoints (+ the end state) vs 129 full states
        // plus all outputs: an order of magnitude, growing with cycles.
        assert!(
            cp.golden().stored_bits() * 8 < dense.golden().stored_bits(),
            "checkpointed {} bits vs dense {} bits",
            cp.golden().stored_bits(),
            dense.golden().stored_bits()
        );
    }

    #[test]
    fn grader_is_send_sync() {
        // The parallel engine hands `&Grader` to scoped worker threads;
        // this must stay true as the interior types evolve.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Grader>();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fault_cycle_out_of_range_panics() {
        let n = generators::counter(2);
        let tb = Testbench::constant_low(0, 4);
        let g = Grader::new(&n, &tb);
        let _ = g.classify_serial(Fault::new(FfIndex::new(0), 99));
    }

    #[test]
    fn collapse_labels_round_trip() {
        for c in [Collapse::Early, Collapse::Horizon] {
            assert_eq!(Collapse::from_label(c.label()), Some(c));
        }
        assert_eq!(Collapse::default(), Collapse::Early);
        assert_eq!(Collapse::from_label("sometimes"), None);
    }

    #[test]
    fn horizon_collapse_matches_early_verdicts() {
        use seugrade_sim::TracePolicy;
        let n = seugrade_circuits::registry::build("b06s").unwrap();
        let tb = Testbench::random(n.num_inputs(), 25, 11);
        let faults = FaultList::exhaustive(n.num_ffs(), 25);
        for policy in [TracePolicy::Dense, TracePolicy::Checkpoint(4)] {
            let g = Grader::with_policy(&n, &tb, policy);
            let reference = g.run_serial(faults.as_slice());
            for (i, &f) in faults.as_slice().iter().enumerate() {
                assert_eq!(
                    g.classify_serial_with(f, Collapse::Horizon),
                    reference[i],
                    "{f} under {policy}"
                );
            }
            let mut scratch = g.new_scratch(Collapse::Horizon, 4);
            let mut out = [FaultOutcome::latent(); 64];
            // Exhaustive lists are cycle-major: each group shares a cycle.
            for (group_start, group) in faults.as_slice().chunks(n.num_ffs()).enumerate() {
                for (k0, chunk) in group.chunks(g.chunk_lanes()).enumerate() {
                    g.grade_chunk(&mut scratch, chunk, &mut out[..chunk.len()]);
                    let base = group_start * n.num_ffs() + k0 * g.chunk_lanes();
                    for (k, o) in out[..chunk.len()].iter().enumerate() {
                        assert_eq!(
                            *o, reference[base + k],
                            "chunked horizon verdict under {policy}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn retired_chunk_is_never_resimulated_past_its_decision_cycle() {
        use seugrade_sim::TracePolicy;
        // q <= input every cycle: the fault is overwritten (silent) at
        // its own injection cycle, so exactly one faulty cycle may run.
        let mut b = NetlistBuilder::new("overwrite");
        let a = b.input("a");
        let q = b.dff(false);
        b.connect_dff(q, a).unwrap();
        b.output("y", a);
        let n = b.finish().unwrap();
        let tb = Testbench::random(1, 32, 5);
        let g = Grader::with_policy(&n, &tb, TracePolicy::Checkpoint(8));
        let mut scratch = g.new_scratch(Collapse::Early, 4);
        let mut out = [FaultOutcome::latent()];
        let t = 3;
        g.grade_chunk(&mut scratch, &[Fault::new(FfIndex::new(0), t)], &mut out);
        assert_eq!(out[0].class, FaultClass::Silent);
        assert_eq!(out[0].converge_cycle, Some(t));
        assert_eq!(
            scratch.sim_steps(),
            1,
            "a lane decided at its injection cycle must simulate exactly one cycle"
        );
        // The same chunk without collapse walks all the way out.
        let mut horizon = g.new_scratch(Collapse::Horizon, 4);
        g.grade_chunk(&mut horizon, &[Fault::new(FfIndex::new(0), t)], &mut out);
        assert_eq!(out[0].converge_cycle, Some(t), "verdict unchanged");
        assert_eq!(horizon.sim_steps(), 32 - u64::from(t));
    }

    #[test]
    fn companion_chunk_replays_only_the_seed_span() {
        use seugrade_sim::TracePolicy;
        // A latent-heavy circuit: the fault walks to the horizon, but the
        // companion-lane path must still fetch exactly one golden span.
        let n = generators::lfsr(12, &[11, 9, 7, 4]);
        let tb = Testbench::random(0, 64, 9);
        let g = Grader::with_policy(&n, &tb, TracePolicy::Checkpoint(8));
        // Pinned to the tape kernel: the companion-lane path is what
        // fetches value windows (the differential kernel replays golden
        // *bit spans* through its own cache instead).
        let mut scratch = g.new_scratch(Collapse::Early, 4).with_kernel(Kernel::Tape);
        let mut out = [FaultOutcome::latent(); 2];
        let chunk = [Fault::new(FfIndex::new(0), 10), Fault::new(FfIndex::new(3), 10)];
        g.grade_chunk(&mut scratch, &chunk, &mut out);
        assert_eq!(
            scratch.cache().misses(),
            1,
            "one span replay to seed the chunk, none for the walk"
        );
        // A same-span neighbour chunk is served from the cache.
        let chunk2 = [Fault::new(FfIndex::new(5), 11)];
        g.grade_chunk(&mut scratch, &chunk2, &mut out[..1]);
        assert_eq!(scratch.cache().misses(), 1);
        assert_eq!(scratch.cache().hits(), 1);
    }

    #[test]
    fn every_kernel_agrees_with_serial() {
        use seugrade_sim::TracePolicy;
        for name in ["b03s", "b06s"] {
            let n = seugrade_circuits::registry::build(name).unwrap();
            let tb = Testbench::random(n.num_inputs(), 25, 31);
            let faults = FaultList::exhaustive(n.num_ffs(), 25);
            for policy in [TracePolicy::Dense, TracePolicy::Checkpoint(4)] {
                let g = Grader::with_policy(&n, &tb, policy);
                let reference = g.run_serial(faults.as_slice());
                for kernel in Kernel::CONCRETE {
                    for collapse in [Collapse::Early, Collapse::Horizon] {
                        let mut scratch =
                            g.new_scratch(collapse, 4).with_kernel(kernel);
                        assert_eq!(scratch.kernel(), kernel);
                        let mut got = vec![FaultOutcome::latent(); faults.len()];
                        let mut out = [FaultOutcome::latent(); 64];
                        for (gi, group) in
                            faults.as_slice().chunks(n.num_ffs()).enumerate()
                        {
                            for (ci, chunk) in
                                group.chunks(g.chunk_lanes()).enumerate()
                            {
                                g.grade_chunk(&mut scratch, chunk, &mut out[..chunk.len()]);
                                let base = gi * n.num_ffs() + ci * g.chunk_lanes();
                                got[base..base + chunk.len()]
                                    .copy_from_slice(&out[..chunk.len()]);
                            }
                        }
                        assert_eq!(
                            got, reference,
                            "{name} {policy} kernel {kernel} collapse {}",
                            collapse.label()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn differential_kernel_replays_bit_spans_once() {
        use seugrade_sim::TracePolicy;
        // Latent-heavy: faults walk to the horizon, crossing every span.
        let n = generators::lfsr(12, &[11, 9, 7, 4]);
        let tb = Testbench::random(0, 64, 9);
        let g = Grader::with_policy(&n, &tb, TracePolicy::Checkpoint(8));
        // Early collapse decides the chunk inside its first span: one
        // bit-span replay, no value windows.
        let mut scratch = g.new_scratch(Collapse::Early, 16);
        let mut out = [FaultOutcome::latent(); 2];
        let chunk = [Fault::new(FfIndex::new(0), 10), Fault::new(FfIndex::new(3), 10)];
        g.grade_chunk(&mut scratch, &chunk, &mut out);
        assert_eq!(scratch.bit_cache().misses(), 1);
        assert_eq!(scratch.cache().misses(), 0, "no value windows fetched");
        // A horizon walk from cycle 10 crosses spans 8..16 through
        // 56..64: 7 distinct spans replayed into a fresh cache.
        let mut horizon = g.new_scratch(Collapse::Horizon, 16);
        g.grade_chunk(&mut horizon, &chunk, &mut out);
        assert_eq!(horizon.bit_cache().misses(), 7);
        // Re-walking the same chunk hits every span.
        g.grade_chunk(&mut horizon, &chunk, &mut out);
        assert_eq!(horizon.bit_cache().misses(), 7);
        assert_eq!(horizon.bit_cache().hits(), 7);
    }

    #[test]
    fn kernel_labels_round_trip() {
        for k in [Kernel::Auto, Kernel::Generic, Kernel::Tape, Kernel::Differential] {
            assert_eq!(Kernel::from_label(k.label()), Some(k));
        }
        assert_eq!(Kernel::default(), Kernel::Auto);
        assert_eq!(Kernel::Auto.resolve(), Kernel::Differential);
        assert_eq!(Kernel::Tape.resolve(), Kernel::Tape);
        assert_eq!(Kernel::from_label("quantum"), None);
    }
}
