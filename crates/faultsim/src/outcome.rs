//! Fault classification results and aggregation.

use std::fmt;

/// How a fault manifested (the paper's three grading classes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// A primary output diverged from the golden run.
    Failure,
    /// Outputs never diverged but the corrupted state survived to the end
    /// of the test bench.
    Latent,
    /// The fault effect disappeared: the faulty state re-converged to the
    /// golden state with no output divergence.
    Silent,
}

impl FaultClass {
    /// All classes in report order.
    pub const ALL: [FaultClass; 3] = [FaultClass::Failure, FaultClass::Latent, FaultClass::Silent];

    /// Lower-case label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::Failure => "failure",
            FaultClass::Latent => "latent",
            FaultClass::Silent => "silent",
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Full grading verdict for one fault.
///
/// Besides the class, the outcome records *when* the classification
/// became known — exactly the quantity the emulation-technique timing
/// models need (a time-multiplexed campaign stops emulating a fault at
/// its detection/convergence cycle).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultOutcome {
    /// The grading class.
    pub class: FaultClass,
    /// For failures: first cycle `u ≥ t` with an output mismatch.
    pub detect_cycle: Option<u32>,
    /// For silent faults: first cycle `u` after which the states are
    /// equal (`S'_{u+1} = S_{u+1}`).
    pub converge_cycle: Option<u32>,
}

impl FaultOutcome {
    /// A failure detected at cycle `u`.
    #[must_use]
    pub fn failure(u: u32) -> Self {
        FaultOutcome { class: FaultClass::Failure, detect_cycle: Some(u), converge_cycle: None }
    }

    /// A silent fault converged at cycle `u`.
    #[must_use]
    pub fn silent(u: u32) -> Self {
        FaultOutcome { class: FaultClass::Silent, detect_cycle: None, converge_cycle: Some(u) }
    }

    /// A latent fault (survived to the end untouched by the outputs).
    #[must_use]
    pub fn latent() -> Self {
        FaultOutcome { class: FaultClass::Latent, detect_cycle: None, converge_cycle: None }
    }

    /// The cycle at which the verdict became known, given the test-bench
    /// length: detection cycle, convergence cycle, or the last cycle for
    /// latent faults. This is what early-terminating emulation runs until.
    #[must_use]
    pub fn classify_cycle(&self, num_cycles: usize) -> u32 {
        self.detect_cycle
            .or(self.converge_cycle)
            .unwrap_or(num_cycles.saturating_sub(1) as u32)
    }
}

/// Aggregated grading result (the paper's "49.2 % failure, 4.4 % latent,
/// 46.4 % silent" line).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GradingSummary {
    failures: usize,
    latents: usize,
    silents: usize,
}

impl GradingSummary {
    /// Empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Tallies a batch of outcomes.
    #[must_use]
    pub fn from_outcomes(outcomes: &[FaultOutcome]) -> Self {
        let mut s = Self::new();
        for o in outcomes {
            s.add(o.class);
        }
        s
    }

    /// Rebuilds a summary from per-class counts — the inverse of reading
    /// [`count`](Self::count) for every class, used when restoring a
    /// persisted campaign checkpoint.
    #[must_use]
    pub fn from_counts(failures: usize, latents: usize, silents: usize) -> Self {
        GradingSummary { failures, latents, silents }
    }

    /// Adds one classified fault.
    pub fn add(&mut self, class: FaultClass) {
        match class {
            FaultClass::Failure => self.failures += 1,
            FaultClass::Latent => self.latents += 1,
            FaultClass::Silent => self.silents += 1,
        }
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &GradingSummary) {
        self.failures += other.failures;
        self.latents += other.latents;
        self.silents += other.silents;
    }

    /// Count for one class.
    #[must_use]
    pub fn count(&self, class: FaultClass) -> usize {
        match class {
            FaultClass::Failure => self.failures,
            FaultClass::Latent => self.latents,
            FaultClass::Silent => self.silents,
        }
    }

    /// Total classified faults.
    #[must_use]
    pub fn total(&self) -> usize {
        self.failures + self.latents + self.silents
    }

    /// Percentage (0–100) for one class; 0 when empty.
    #[must_use]
    pub fn percent(&self, class: FaultClass) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.count(class) as f64 * 100.0 / self.total() as f64
        }
    }
}

impl fmt::Display for GradingSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} faults: {:.1}% failure, {:.1}% latent, {:.1}% silent",
            self.total(),
            self.percent(FaultClass::Failure),
            self.percent(FaultClass::Latent),
            self.percent(FaultClass::Silent)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_constructors() {
        let f = FaultOutcome::failure(7);
        assert_eq!(f.class, FaultClass::Failure);
        assert_eq!(f.detect_cycle, Some(7));
        let s = FaultOutcome::silent(3);
        assert_eq!(s.converge_cycle, Some(3));
        let l = FaultOutcome::latent();
        assert_eq!(l.detect_cycle, None);
        assert_eq!(l.converge_cycle, None);
    }

    #[test]
    fn classify_cycle_for_each_class() {
        assert_eq!(FaultOutcome::failure(7).classify_cycle(100), 7);
        assert_eq!(FaultOutcome::silent(3).classify_cycle(100), 3);
        assert_eq!(FaultOutcome::latent().classify_cycle(100), 99);
    }

    #[test]
    fn summary_counts_and_percentages() {
        let outcomes = [
            FaultOutcome::failure(0),
            FaultOutcome::failure(1),
            FaultOutcome::silent(0),
            FaultOutcome::latent(),
        ];
        let s = GradingSummary::from_outcomes(&outcomes);
        assert_eq!(s.total(), 4);
        assert_eq!(s.count(FaultClass::Failure), 2);
        assert_eq!(s.percent(FaultClass::Failure), 50.0);
        assert_eq!(s.percent(FaultClass::Latent), 25.0);
        let text = s.to_string();
        assert!(text.contains("50.0% failure"));
    }

    #[test]
    fn merge_sums() {
        let mut a = GradingSummary::from_outcomes(&[FaultOutcome::failure(0)]);
        let b = GradingSummary::from_outcomes(&[FaultOutcome::latent(), FaultOutcome::silent(1)]);
        a.merge(&b);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn empty_summary_percent_is_zero() {
        let s = GradingSummary::new();
        assert_eq!(s.percent(FaultClass::Failure), 0.0);
    }
}
