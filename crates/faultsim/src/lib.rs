//! Software SEU fault simulation and fault classification.
//!
//! This crate is both the **baseline** the paper compares against (fault
//! simulation on a workstation, quoted at 1300 µs/fault in 2005) and the
//! **behavioural oracle** for the autonomous-emulation models: every
//! engine in the workspace must classify every fault identically.
//!
//! # Fault model
//!
//! A transient fault ([`Fault`]) is a bit-flip (SEU) of one flip-flop at
//! the start of one test-bench cycle: `S'_t = S_t ⊕ e_ff`. The exhaustive
//! fault list is the cross product `flip-flops × cycles` — for the paper's
//! b14 experiment, 215 × 160 = 34,400 faults.
//!
//! # Classification
//!
//! Comparing the faulty run against the golden run from the injection
//! cycle `t` onward ([`FaultClass`]):
//!
//! - **Failure** — some primary output differs at a cycle `u ≥ t`
//!   (first such `u` is the *detection cycle*);
//! - **Silent** — outputs never differ and the faulty state becomes equal
//!   to the golden state (first such cycle is the *convergence cycle*;
//!   once converged nothing can ever differ);
//! - **Latent** — outputs never differ but the state still differs at the
//!   end of the test bench.
//!
//! # Engines
//!
//! [`Grader`] bundles the compiled simulator and the golden trace and
//! offers three interchangeable execution strategies:
//! serial (one fault at a time — the readable reference), bit-parallel
//! (64 faulty machines per simulation pass) and multi-threaded
//! bit-parallel. [`Grader::grade_cycle_chunk`] exposes the shard-sized
//! building block (one same-cycle 64-lane pass with caller-owned
//! scratch state) that the `seugrade-engine` campaign runtime schedules
//! across worker threads, and [`sampling::pool_summaries`] is that
//! runtime's order-independent merge step; [`FaultList::split_into`]
//! and [`FaultList::chunks`] give callers borrowed shard views so
//! sharding never has to clone fault vectors.
//!
//! # Example
//!
//! ```
//! use seugrade_circuits::generators;
//! use seugrade_faultsim::{FaultList, Grader, GradingSummary};
//! use seugrade_sim::Testbench;
//!
//! let circuit = generators::lfsr(8, &[7, 5, 4, 3]);
//! let tb = Testbench::constant_low(0, 20);
//! let grader = Grader::new(&circuit, &tb);
//! let faults = FaultList::exhaustive(circuit.num_ffs(), tb.num_cycles());
//! let outcomes = grader.run_parallel(faults.as_slice());
//! let summary = GradingSummary::from_outcomes(&outcomes);
//! assert_eq!(summary.total(), 8 * 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod grader;
pub mod multi;
mod outcome;
pub mod report;
pub mod sampling;

pub use fault::{Fault, FaultList};
pub use grader::{Collapse, GradeScratch, Grader, DEFAULT_WINDOW_CACHE_SPANS};
pub use multi::MultiFault;
pub use outcome::{FaultClass, FaultOutcome, GradingSummary};
