//! The SEU fault descriptor and fault lists.

use std::fmt;

use seugrade_netlist::FfIndex;
use seugrade_sim::SplitMix64;

/// One transient fault: flip flip-flop `ff` at the start of cycle `cycle`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fault {
    /// Target flip-flop.
    pub ff: FfIndex,
    /// Injection cycle (0-based test-bench cycle).
    pub cycle: u32,
}

impl Fault {
    /// Creates a fault descriptor.
    #[must_use]
    pub fn new(ff: FfIndex, cycle: u32) -> Self {
        Fault { ff, cycle }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.ff, self.cycle)
    }
}

/// An ordered list of faults to grade.
///
/// The canonical (exhaustive) order is **cycle-major**: all flip-flops at
/// cycle 0, then cycle 1, … — the iteration order of the time-multiplexed
/// emulation technique, which advances a golden checkpoint cycle by cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultList {
    faults: Vec<Fault>,
    num_ffs: usize,
    num_cycles: usize,
}

impl FaultList {
    /// The complete single-fault list: `num_ffs × num_cycles` faults in
    /// cycle-major order (the paper's 34,400 for b14/160).
    #[must_use]
    pub fn exhaustive(num_ffs: usize, num_cycles: usize) -> Self {
        let mut faults = Vec::with_capacity(num_ffs * num_cycles);
        for cycle in 0..num_cycles as u32 {
            for ff in 0..num_ffs {
                faults.push(Fault::new(FfIndex::new(ff), cycle));
            }
        }
        FaultList { faults, num_ffs, num_cycles }
    }

    /// A uniform sample of `count` distinct faults from the exhaustive
    /// list (deterministic for a given seed). If `count` exceeds the
    /// exhaustive size the full list is returned.
    #[must_use]
    pub fn sampled(num_ffs: usize, num_cycles: usize, count: usize, seed: u64) -> Self {
        let mut full = Self::exhaustive(num_ffs, num_cycles);
        if count >= full.faults.len() {
            return full;
        }
        let mut rng = SplitMix64::new(seed);
        // Partial Fisher-Yates: draw `count` distinct elements to the front.
        let n = full.faults.len();
        for i in 0..count {
            let j = i + rng.index(n - i);
            full.faults.swap(i, j);
        }
        full.faults.truncate(count);
        full.faults.sort();
        FaultList { faults: full.faults, num_ffs, num_cycles }
    }

    /// Restricts an exhaustive list to one flip-flop (all cycles) — used
    /// by per-flip-flop vulnerability reports.
    #[must_use]
    pub fn for_ff(num_cycles: usize, ff: FfIndex) -> Self {
        let faults = (0..num_cycles as u32)
            .map(|cycle| Fault::new(ff, cycle))
            .collect();
        FaultList { faults, num_ffs: ff.index() + 1, num_cycles }
    }

    /// The faults, in order.
    #[must_use]
    pub fn as_slice(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when no faults are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Flip-flop dimension of the originating fault space.
    #[must_use]
    pub fn num_ffs(&self) -> usize {
        self.num_ffs
    }

    /// Cycle dimension of the originating fault space.
    #[must_use]
    pub fn num_cycles(&self) -> usize {
        self.num_cycles
    }

    /// Iterates over the faults.
    pub fn iter(&self) -> impl Iterator<Item = Fault> + '_ {
        self.faults.iter().copied()
    }

    /// Wraps an explicit fault vector with its originating fault-space
    /// dimensions — the constructor campaign runtimes use to materialize
    /// custom plans.
    #[must_use]
    pub fn from_faults(faults: Vec<Fault>, num_ffs: usize, num_cycles: usize) -> Self {
        FaultList { faults, num_ffs, num_cycles }
    }

    /// Splits the list into `n` contiguous, near-equal shards **without
    /// copying a single fault** — the shards borrow the list. Their
    /// concatenation is exactly the list, so per-shard outcome vectors
    /// concatenate back into the serial result.
    ///
    /// When the list is shorter than `n`, the trailing shards are empty.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn split_into(&self, n: usize) -> Vec<&[Fault]> {
        assert!(n > 0, "cannot split into zero shards");
        let base = self.faults.len() / n;
        let extra = self.faults.len() % n;
        let mut shards = Vec::with_capacity(n);
        let mut start = 0;
        for i in 0..n {
            let len = base + usize::from(i < extra);
            shards.push(&self.faults[start..start + len]);
            start += len;
        }
        shards
    }

    /// Borrowed chunks of at most `max` faults each (no copying); the
    /// natural unit for feeding a work queue.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn chunks(&self, max: usize) -> std::slice::Chunks<'_, Fault> {
        self.faults.chunks(max)
    }
}

impl<'a> IntoIterator for &'a FaultList {
    type Item = &'a Fault;
    type IntoIter = std::slice::Iter<'a, Fault>;
    fn into_iter(self) -> Self::IntoIter {
        self.faults.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_is_cycle_major_cross_product() {
        let fl = FaultList::exhaustive(3, 4);
        assert_eq!(fl.len(), 12);
        assert_eq!(fl.as_slice()[0], Fault::new(FfIndex::new(0), 0));
        assert_eq!(fl.as_slice()[1], Fault::new(FfIndex::new(1), 0));
        assert_eq!(fl.as_slice()[3], Fault::new(FfIndex::new(0), 1));
        // paper numbers
        assert_eq!(FaultList::exhaustive(215, 160).len(), 34_400);
    }

    #[test]
    fn sample_is_deterministic_distinct_subset() {
        let a = FaultList::sampled(10, 10, 25, 7);
        let b = FaultList::sampled(10, 10, 25, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 25);
        let set: std::collections::HashSet<Fault> = a.iter().collect();
        assert_eq!(set.len(), 25, "sample has duplicates");
        let full: std::collections::HashSet<Fault> =
            FaultList::exhaustive(10, 10).iter().collect();
        assert!(set.is_subset(&full));
    }

    #[test]
    fn oversample_returns_full_list() {
        let fl = FaultList::sampled(3, 3, 100, 1);
        assert_eq!(fl.len(), 9);
    }

    #[test]
    fn for_ff_covers_all_cycles() {
        let fl = FaultList::for_ff(5, FfIndex::new(2));
        assert_eq!(fl.len(), 5);
        assert!(fl.iter().all(|f| f.ff == FfIndex::new(2)));
    }

    #[test]
    fn display_format() {
        assert_eq!(Fault::new(FfIndex::new(3), 17).to_string(), "ff3@17");
    }

    #[test]
    fn split_into_concatenates_back() {
        let fl = FaultList::exhaustive(7, 13); // 91 faults
        for n in [1, 2, 3, 8, 91, 200] {
            let shards = fl.split_into(n);
            assert_eq!(shards.len(), n);
            let glued: Vec<Fault> = shards.iter().flat_map(|s| s.iter().copied()).collect();
            assert_eq!(glued, fl.as_slice(), "n = {n}");
            // Near-equal: sizes differ by at most one.
            let max = shards.iter().map(|s| s.len()).max().unwrap();
            let min = shards.iter().map(|s| s.len()).min().unwrap();
            assert!(max - min <= 1, "n = {n}: {min}..{max}");
        }
    }

    #[test]
    fn chunks_respect_bound() {
        let fl = FaultList::exhaustive(5, 10); // 50 faults
        let chunks: Vec<&[Fault]> = fl.chunks(16).collect();
        assert_eq!(chunks.len(), 4);
        assert!(chunks.iter().all(|c| c.len() <= 16));
        let glued: Vec<Fault> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
        assert_eq!(glued, fl.as_slice());
    }

    #[test]
    fn from_faults_preserves_dimensions() {
        let faults = vec![Fault::new(FfIndex::new(1), 2)];
        let fl = FaultList::from_faults(faults, 4, 8);
        assert_eq!(fl.len(), 1);
        assert_eq!(fl.num_ffs(), 4);
        assert_eq!(fl.num_cycles(), 8);
    }

    #[test]
    #[should_panic(expected = "zero shards")]
    fn zero_shards_rejected() {
        let _ = FaultList::exhaustive(2, 2).split_into(0);
    }
}
