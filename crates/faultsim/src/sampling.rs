//! Statistical fault sampling (extension beyond the paper).
//!
//! The paper grades the *complete* fault list (34,400 faults). For larger
//! circuits or longer benches, exhaustive campaigns grow quadratically;
//! sampling with confidence intervals is the standard remedy. This
//! module adds Wilson-score intervals over sampled
//! [`GradingSummary`]s, so a user can grade, say,
//! 2,000 of 34,400 faults and bound each class percentage.

use crate::{FaultClass, GradingSummary};

/// A two-sided confidence interval for a class proportion, in percent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassEstimate {
    /// The graded class.
    pub class: FaultClass,
    /// Point estimate, percent.
    pub percent: f64,
    /// Lower bound of the interval, percent.
    pub low: f64,
    /// Upper bound of the interval, percent.
    pub high: f64,
}

impl ClassEstimate {
    /// Whether a reference percentage lies inside the interval.
    #[must_use]
    pub fn covers(&self, reference_pct: f64) -> bool {
        (self.low..=self.high).contains(&reference_pct)
    }

    /// Interval half-width in percentage points.
    #[must_use]
    pub fn half_width(&self) -> f64 {
        (self.high - self.low) / 2.0
    }
}

/// Wilson score interval for a binomial proportion.
///
/// `successes` out of `trials`, with critical value `z` (1.96 for 95 %).
/// Returns `(low, high)` as fractions in `[0, 1]`.
///
/// # Panics
///
/// Panics if `trials` is zero or `successes > trials`.
#[must_use]
pub fn wilson_interval(successes: usize, trials: usize, z: f64) -> (f64, f64) {
    assert!(trials > 0, "wilson interval over zero trials");
    assert!(successes <= trials, "more successes than trials");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let margin = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((centre - margin).max(0.0), (centre + margin).min(1.0))
}

/// Computes a 95 % Wilson estimate for every class of a (sampled)
/// summary.
///
/// # Panics
///
/// Panics if the summary is empty.
#[must_use]
pub fn estimate_classes(summary: &GradingSummary) -> Vec<ClassEstimate> {
    let total = summary.total();
    assert!(total > 0, "estimates need at least one graded fault");
    FaultClass::ALL
        .iter()
        .map(|&class| {
            let count = summary.count(class);
            let (lo, hi) = wilson_interval(count, total, 1.96);
            ClassEstimate {
                class,
                percent: summary.percent(class),
                low: lo * 100.0,
                high: hi * 100.0,
            }
        })
        .collect()
}

/// Pools per-shard summaries into one campaign-wide summary — the merge
/// step of a sharded sampling campaign. Order-independent, so the pooled
/// result is identical whatever the shard schedule.
#[must_use]
pub fn pool_summaries(shards: &[GradingSummary]) -> GradingSummary {
    let mut pooled = GradingSummary::new();
    for s in shards {
        pooled.merge(s);
    }
    pooled
}

/// Wilson estimates computed directly from per-shard summaries, so
/// callers that kept only per-shard tallies can bound class percentages
/// without a global outcome vector.
///
/// # Panics
///
/// Panics if the pooled summary is empty.
#[must_use]
pub fn estimate_classes_sharded(shards: &[GradingSummary]) -> Vec<ClassEstimate> {
    estimate_classes(&pool_summaries(shards))
}

/// Sample size needed for a target half-width (percentage points) at
/// 95 % confidence, using the conservative `p = 0.5` bound.
///
/// # Panics
///
/// Panics if `half_width_pct` is not positive.
#[must_use]
pub fn sample_size_for(half_width_pct: f64) -> usize {
    assert!(half_width_pct > 0.0, "half width must be positive");
    let h = half_width_pct / 100.0;
    let z = 1.96f64;
    ((z * z * 0.25) / (h * h)).ceil() as usize
}

#[cfg(test)]
mod tests {
    use crate::FaultOutcome;
    use super::*;

    #[test]
    fn wilson_brackets_the_proportion() {
        let (lo, hi) = wilson_interval(50, 100, 1.96);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.25, "reasonably tight at n=100");
        let (lo, hi) = wilson_interval(0, 100, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi < 0.06);
        let (lo, hi) = wilson_interval(100, 100, 1.96);
        assert!(lo > 0.94);
        assert!(hi > 0.999, "floating-point upper bound near 1: {hi}");
    }

    #[test]
    fn interval_tightens_with_n() {
        let (lo1, hi1) = wilson_interval(30, 100, 1.96);
        let (lo2, hi2) = wilson_interval(300, 1000, 1.96);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn estimates_cover_each_class() {
        let outcomes: Vec<FaultOutcome> = (0..200)
            .map(|i| match i % 4 {
                0 | 1 => FaultOutcome::failure(1),
                2 => FaultOutcome::latent(),
                _ => FaultOutcome::silent(0),
            })
            .collect();
        let summary = GradingSummary::from_outcomes(&outcomes);
        let est = estimate_classes(&summary);
        assert_eq!(est.len(), 3);
        for e in &est {
            assert!(e.low <= e.percent && e.percent <= e.high, "{e:?}");
        }
        // failure = 50 %
        assert!(est[0].covers(50.0));
        assert!(!est[0].covers(90.0));
    }

    #[test]
    fn sample_size_formula() {
        // Classic result: +/-2 points at 95 % needs ~2,401 samples.
        assert_eq!(sample_size_for(2.0), 2_401);
        assert!(sample_size_for(1.0) > sample_size_for(5.0));
    }

    #[test]
    #[should_panic(expected = "zero trials")]
    fn zero_trials_panics() {
        let _ = wilson_interval(0, 0, 1.96);
    }

    #[test]
    fn sharded_estimates_match_pooled() {
        // 3 shards whose pooled tallies equal one flat summary.
        let flat = GradingSummary::from_outcomes(&[
            FaultOutcome::failure(0),
            FaultOutcome::failure(2),
            FaultOutcome::latent(),
            FaultOutcome::silent(1),
            FaultOutcome::silent(3),
            FaultOutcome::silent(4),
        ]);
        let shards = [
            GradingSummary::from_outcomes(&[FaultOutcome::failure(0), FaultOutcome::silent(1)]),
            GradingSummary::from_outcomes(&[FaultOutcome::failure(2), FaultOutcome::latent()]),
            GradingSummary::from_outcomes(&[FaultOutcome::silent(3), FaultOutcome::silent(4)]),
        ];
        assert_eq!(pool_summaries(&shards), flat);
        assert_eq!(estimate_classes_sharded(&shards), estimate_classes(&flat));
    }
}
