//! Multi-bit upset (MBU) injection — extension beyond the paper.
//!
//! Shrinking geometries make *multi*-bit upsets (one particle flipping
//! several adjacent flip-flops in the same cycle) increasingly relevant;
//! the paper's framework handles them with the same classification
//! semantics, only the injection step changes: `S'_t = S_t ⊕ mask`.
//! Notably, TMR — which corrects every single-bit flip — is defeated by
//! an MBU hitting two copies of the same bit, which the tests
//! demonstrate.

use seugrade_netlist::FfIndex;

use crate::{FaultOutcome, Grader};

/// A multi-bit fault: flip every listed flip-flop at the start of one
/// cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiFault {
    /// Flip-flops hit (distinct; order irrelevant).
    pub ffs: Vec<FfIndex>,
    /// Injection cycle.
    pub cycle: u32,
}

impl MultiFault {
    /// Creates a multi-bit fault descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `ffs` is empty or contains duplicates.
    #[must_use]
    pub fn new(ffs: Vec<FfIndex>, cycle: u32) -> Self {
        assert!(!ffs.is_empty(), "multi-fault needs at least one flip-flop");
        let mut sorted = ffs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ffs.len(), "duplicate flip-flop in multi-fault");
        MultiFault { ffs, cycle }
    }

    /// Number of bits flipped.
    #[must_use]
    pub fn multiplicity(&self) -> usize {
        self.ffs.len()
    }

    /// All adjacent `k`-bit faults for a given cycle count (models a
    /// particle strike spanning `k` physically neighbouring flip-flops
    /// under the netlist's flip-flop ordering).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds `num_ffs`.
    #[must_use]
    pub fn adjacent_pairs(num_ffs: usize, num_cycles: usize, k: usize) -> Vec<MultiFault> {
        assert!(k >= 1 && k <= num_ffs, "invalid multiplicity {k}");
        let mut list = Vec::new();
        for cycle in 0..num_cycles as u32 {
            for start in 0..=(num_ffs - k) {
                list.push(MultiFault::new(
                    (start..start + k).map(FfIndex::new).collect(),
                    cycle,
                ));
            }
        }
        list
    }
}

impl Grader {
    /// Grades one multi-bit fault with the serial engine (the same
    /// classification semantics as single faults; only injection
    /// differs). Like the single-fault engines, the golden run is
    /// consumed through bounded windows, so any
    /// [`TracePolicy`](seugrade_sim::TracePolicy) works.
    ///
    /// # Panics
    ///
    /// Panics if the cycle or any flip-flop index is out of range.
    #[must_use]
    pub fn classify_multi(&self, fault: &MultiFault) -> FaultOutcome {
        let n_cycles = self.testbench().num_cycles();
        let t = fault.cycle as usize;
        assert!(t < n_cycles, "fault cycle out of range");
        let sim = self.sim();
        let mut win = self.first_window(t);
        let mut st = sim.new_state();
        sim.load_state(&mut st, win.state_at(t));
        for &ff in &fault.ffs {
            sim.flip_ff_lane(&mut st, ff, 0);
        }
        for u in t..n_cycles {
            if u >= win.end() {
                win = self.next_window(&win);
            }
            sim.set_inputs(&mut st, self.testbench().cycle(u));
            sim.eval(&mut st);
            if sim.outputs_lane(&st, 0) != win.output_at(u) {
                return FaultOutcome::failure(u as u32);
            }
            sim.step(&mut st);
            if sim.state_lane(&st, 0) == win.state_at(u + 1) {
                return FaultOutcome::silent(u as u32);
            }
        }
        FaultOutcome::latent()
    }

    /// Grades a list of multi-bit faults.
    #[must_use]
    pub fn run_multi(&self, faults: &[MultiFault]) -> Vec<FaultOutcome> {
        faults.iter().map(|f| self.classify_multi(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use seugrade_circuits::generators;
    use seugrade_sim::Testbench;

    use crate::{Fault, FaultClass, GradingSummary};
    use super::*;

    #[test]
    fn single_bit_multifault_equals_single_fault() {
        let circuit = generators::shift_register(6);
        let tb = Testbench::random(1, 15, 3);
        let g = Grader::new(&circuit, &tb);
        for ff in 0..6 {
            for t in 0..15 {
                let single = g.classify_serial(Fault::new(FfIndex::new(ff), t));
                let multi = g.classify_multi(&MultiFault::new(vec![FfIndex::new(ff)], t));
                assert_eq!(single, multi, "ff{ff}@{t}");
            }
        }
    }

    #[test]
    fn adjacent_enumeration_shape() {
        let list = MultiFault::adjacent_pairs(5, 4, 2);
        assert_eq!(list.len(), 4 * 4);
        assert!(list.iter().all(|f| f.multiplicity() == 2));
        let singles = MultiFault::adjacent_pairs(5, 4, 1);
        assert_eq!(singles.len(), 20);
    }

    #[test]
    fn double_fault_in_counter_still_fails() {
        let circuit = generators::counter(4);
        let tb = Testbench::constant_low(0, 8);
        let g = Grader::new(&circuit, &tb);
        for f in MultiFault::adjacent_pairs(4, 8, 2) {
            let o = g.classify_multi(&f);
            assert_eq!(o.class, FaultClass::Failure);
            assert_eq!(o.detect_cycle, Some(f.cycle));
        }
    }

    #[test]
    fn tmr_survives_singles_but_not_all_doubles() {
        use seugrade_harden::tmr;
        let plain = generators::lfsr(5, &[4, 2]);
        let hardened = tmr(&plain);
        let tb = Testbench::constant_low(0, 16);
        let g = Grader::new(&hardened, &tb);

        // All single faults heal (silent).
        let singles = MultiFault::adjacent_pairs(hardened.num_ffs(), 16, 1);
        let s = GradingSummary::from_outcomes(&g.run_multi(&singles));
        assert_eq!(s.count(FaultClass::Failure), 0);

        // Adjacent doubles can hit two copies of the same bit (the TMR
        // layout interleaves copies), defeating the voter.
        let doubles = MultiFault::adjacent_pairs(hardened.num_ffs(), 16, 2);
        let d = GradingSummary::from_outcomes(&g.run_multi(&doubles));
        assert!(
            d.count(FaultClass::Failure) > 0,
            "MBUs must defeat interleaved TMR: {d}"
        );
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_ffs_rejected() {
        let _ = MultiFault::new(vec![FfIndex::new(1), FfIndex::new(1)], 0);
    }

    #[test]
    fn multi_verdicts_are_policy_independent() {
        use seugrade_sim::TracePolicy;
        let circuit = generators::lfsr(6, &[5, 2]);
        let tb = Testbench::constant_low(0, 20);
        let dense = Grader::new(&circuit, &tb);
        let faults = MultiFault::adjacent_pairs(6, 20, 2);
        let reference = dense.run_multi(&faults);
        for k in [1, 7, 20, 32] {
            let cp = Grader::with_policy(&circuit, &tb, TracePolicy::Checkpoint(k));
            assert_eq!(cp.run_multi(&faults), reference, "K={k}");
        }
    }
}
