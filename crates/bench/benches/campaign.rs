//! End-to-end campaigns: grading plus per-technique report generation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use seugrade::prelude::*;
use seugrade_bench::{paper_fixture, small_fixture};

fn bench_campaign_grading(c: &mut Criterion) {
    let (circuit, tb) = small_fixture();
    let faults = circuit.num_ffs() * tb.num_cycles();
    let mut g = c.benchmark_group("campaign_grade");
    g.throughput(Throughput::Elements(faults as u64));
    g.bench_function("b06s_64", |b| {
        b.iter(|| AutonomousCampaign::new(&circuit, &tb));
    });
    g.finish();
}

fn bench_paper_campaign(c: &mut Criterion) {
    let (circuit, tb) = paper_fixture();
    let mut g = c.benchmark_group("campaign_grade");
    g.sample_size(10);
    g.throughput(Throughput::Elements(34_400));
    g.bench_function("viper_34400_faults", |b| {
        b.iter(|| AutonomousCampaign::new(&circuit, &tb));
    });
    g.finish();
}

fn bench_technique_reports(c: &mut Criterion) {
    let (circuit, tb) = small_fixture();
    let campaign = AutonomousCampaign::new(&circuit, &tb);
    let mut g = c.benchmark_group("technique_report");
    for technique in Technique::ALL {
        g.bench_function(technique.label(), |b| {
            b.iter(|| campaign.run(technique));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_campaign_grading,
    bench_paper_campaign,
    bench_technique_reports
);
criterion_main!(benches);
