//! Faulty-evaluation kernels head to head: the generic per-gate
//! interpreter vs the specialized SoA tape vs the differential
//! dirty-frontier kernel, on a mid-size circuit and on a sampled slice
//! of the s5378-class scale fixture. Throughput is faults per second;
//! the equivalence suites (not this bench) pin the digests.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use seugrade::prelude::*;
use seugrade_bench::medium_fixture;

fn grade_with(circuit: &Netlist, tb: &Testbench, faults: &FaultList, kernel: Kernel) -> u64 {
    let plan = CampaignPlan::builder(circuit, tb)
        .faults(faults.clone())
        .trace_policy(TracePolicy::Checkpoint(64))
        .kernel(kernel)
        .policy(ShardPolicy { threads: 1, serial_below: 0 })
        .build();
    Engine::new(&plan).run_streamed(&plan).digest()
}

fn bench_kernels_medium(c: &mut Criterion) {
    let (circuit, tb) = medium_fixture();
    let faults = FaultList::exhaustive(circuit.num_ffs(), tb.num_cycles());
    let mut g = c.benchmark_group("kernel_medium");
    g.throughput(Throughput::Elements(faults.len() as u64));
    for kernel in Kernel::CONCRETE {
        g.bench_function(BenchmarkId::new(kernel.label(), faults.len()), |b| {
            b.iter(|| grade_with(&circuit, &tb, &faults, kernel));
        });
    }
    g.finish();
}

fn bench_kernels_scale(c: &mut Criterion) {
    let circuit = registry::build("s5378g").expect("registered circuit");
    let tb = Testbench::random(circuit.num_inputs(), 256, 42);
    let faults = FaultList::sampled(circuit.num_ffs(), tb.num_cycles(), 512, 7);
    let mut g = c.benchmark_group("kernel_s5378g");
    g.throughput(Throughput::Elements(faults.len() as u64));
    for kernel in Kernel::CONCRETE {
        g.bench_function(BenchmarkId::new(kernel.label(), faults.len()), |b| {
            b.iter(|| grade_with(&circuit, &tb, &faults, kernel));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kernels_medium, bench_kernels_scale);
criterion_main!(benches);
