//! Instrumentation transforms and technology mapping on the Viper.

use criterion::{criterion_group, criterion_main, Criterion};
use seugrade::prelude::*;
use seugrade_bench::paper_fixture;
use seugrade::instrument::{mask_scan, state_scan, time_mux};

fn bench_instrument(c: &mut Criterion) {
    let (circuit, _) = paper_fixture();
    let mut g = c.benchmark_group("instrument_viper");
    g.bench_function("mask_scan", |b| b.iter(|| mask_scan::instrument(&circuit)));
    g.bench_function("state_scan", |b| b.iter(|| state_scan::instrument(&circuit)));
    g.bench_function("time_mux", |b| b.iter(|| time_mux::instrument(&circuit)));
    g.finish();
}

fn bench_techmap(c: &mut Criterion) {
    let (circuit, _) = paper_fixture();
    let config = MapperConfig::virtex_e();
    let mut g = c.benchmark_group("techmap");
    g.sample_size(20);
    g.bench_function("viper_4lut", |b| b.iter(|| map_luts(&circuit, &config)));
    let tmx = time_mux::instrument(&circuit);
    g.bench_function("viper_timemux_4lut", |b| b.iter(|| map_luts(tmx.netlist(), &config)));
    g.finish();
}

fn bench_harden(c: &mut Criterion) {
    let (circuit, _) = paper_fixture();
    let mut g = c.benchmark_group("harden_viper");
    g.bench_function("tmr", |b| b.iter(|| tmr(&circuit)));
    g.bench_function("dwc", |b| b.iter(|| dwc(&circuit)));
    g.finish();
}

criterion_group!(benches, bench_instrument, bench_techmap, bench_harden);
criterion_main!(benches);
