//! Fault-simulation engines: serial vs 64-way bit-parallel vs threaded.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use seugrade::prelude::*;
use seugrade_bench::small_fixture;

fn bench_engines(c: &mut Criterion) {
    let (circuit, tb) = small_fixture();
    let grader = Grader::new(&circuit, &tb);
    let faults = FaultList::exhaustive(circuit.num_ffs(), tb.num_cycles());
    let mut g = c.benchmark_group("faultsim_engines");
    g.throughput(Throughput::Elements(faults.len() as u64));
    g.bench_function(BenchmarkId::new("serial", faults.len()), |b| {
        b.iter(|| grader.run_serial(faults.as_slice()));
    });
    g.bench_function(BenchmarkId::new("parallel64", faults.len()), |b| {
        b.iter(|| grader.run_parallel(faults.as_slice()));
    });
    g.bench_function(BenchmarkId::new("parallel64x4", faults.len()), |b| {
        b.iter(|| grader.run_parallel_threaded(faults.as_slice(), 4));
    });
    g.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let (circuit, tb) = small_fixture();
    let grader = Grader::new(&circuit, &tb);
    let mut g = c.benchmark_group("faultsim_sampling");
    for size in [64usize, 256, 512] {
        let sample = FaultList::sampled(circuit.num_ffs(), tb.num_cycles(), size, 7);
        g.throughput(Throughput::Elements(sample.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &sample, |b, s| {
            b.iter(|| grader.run_parallel(s.as_slice()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engines, bench_sampling);
criterion_main!(benches);
