//! Simulator throughput: compiled (levelized, 64-lane) vs event-driven.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use seugrade::prelude::*;
use seugrade_bench::{medium_fixture, paper_fixture};

fn bench_compiled_golden(c: &mut Criterion) {
    let (circuit, tb) = paper_fixture();
    let sim = CompiledSim::new(&circuit);
    let gate_evals = circuit.num_gates() as u64 * tb.num_cycles() as u64;
    let mut g = c.benchmark_group("golden_run");
    g.throughput(Throughput::Elements(gate_evals));
    g.bench_function("compiled/viper160", |b| {
        b.iter(|| sim.run_golden(&tb));
    });
    g.finish();
}

fn bench_event_golden(c: &mut Criterion) {
    let (circuit, tb) = medium_fixture();
    let mut sim = EventSim::new(&circuit);
    let mut g = c.benchmark_group("golden_run");
    g.bench_function("event/b13s128", |b| {
        b.iter(|| sim.run_golden(&tb));
    });
    g.finish();
}

fn bench_single_cycle(c: &mut Criterion) {
    let (circuit, tb) = paper_fixture();
    let sim = CompiledSim::new(&circuit);
    let mut st = sim.new_state();
    let vector: Vec<bool> = tb.cycle(0).to_vec();
    c.bench_function("compiled_cycle/viper", |b| {
        b.iter(|| sim.cycle(&mut st, &vector));
    });
}

criterion_group!(benches, bench_compiled_golden, bench_event_golden, bench_single_cycle);
criterion_main!(benches);
