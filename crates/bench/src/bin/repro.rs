//! `repro` — regenerate every table and figure of the DATE'05 paper.
//!
//! ```text
//! cargo run -p seugrade-bench --release --bin repro -- all
//! cargo run -p seugrade-bench --release --bin repro -- table2
//! cargo run -p seugrade-bench --release --bin repro -- crossover --quick
//! ```
//!
//! Subcommands: `table1`, `table2`, `figure1`, `classification`, `speed`,
//! `crossover`, `ablations`, `sampling`, `all`. `--quick` shrinks the
//! crossover sweep and sample sizes. `--csv` additionally prints
//! machine-readable CSV blocks.

use std::time::Instant;

use seugrade::experiments::{
    self, ablations_for, classification_for, crossover_for, figure1, sampling_for, speed_for,
    table1, table2_for, viper_crossover_cycles,
};
use seugrade::prelude::*;

struct Options {
    quick: bool,
    csv: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = Options {
        quick: args.iter().any(|a| a == "--quick"),
        csv: args.iter().any(|a| a == "--csv"),
    };
    let commands: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let command = *commands.first().unwrap_or(&"all");

    let known = [
        "table1",
        "table2",
        "figure1",
        "classification",
        "speed",
        "crossover",
        "ablations",
        "sampling",
        "all",
    ];
    if !known.contains(&command) {
        eprintln!("unknown experiment `{command}`; expected one of {known:?}");
        std::process::exit(2);
    }

    let run_all = command == "all";
    let start = Instant::now();

    // The graded campaign is shared by table2 / classification / speed.
    let campaign_needed = run_all
        || matches!(
            command,
            "table2" | "classification" | "speed" | "ablations" | "sampling"
        );
    let fixture = campaign_needed.then(|| {
        let circuit = viper::viper();
        let tb = stimuli::paper_testbench();
        eprintln!(
            "grading {} faults on {} ({} cycles)...",
            circuit.num_ffs() * tb.num_cycles(),
            circuit.name(),
            tb.num_cycles()
        );
        let campaign = AutonomousCampaign::new(&circuit, &tb);
        (circuit, tb, campaign)
    });

    if run_all || command == "figure1" {
        println!("{}", figure1().render());
    }
    if run_all || command == "table1" {
        eprintln!("mapping original, instrumented and controller netlists...");
        let t1 = table1();
        println!("{}", t1.render());
        if opts.csv {
            println!("{}", t1.to_csv());
        }
    }
    if let Some((circuit, tb, campaign)) = &fixture {
        if run_all || command == "table2" {
            let t2 = table2_for(campaign);
            println!("{}", t2.render());
            if opts.csv {
                println!("{}", t2.to_csv());
            }
        }
        if run_all || command == "classification" {
            println!("{}", classification_for(campaign).render());
        }
        if run_all || command == "speed" {
            let sample = if opts.quick { 64 } else { 512 };
            eprintln!("timing software fault simulation ({sample}-fault serial sample)...");
            let s = speed_for(circuit, tb, campaign, sample);
            println!("{}", s.render());
            println!(
                "fastest autonomous technique vs 2005 fault simulation: {:.1} orders of magnitude\n",
                s.orders_of_magnitude_vs_simulation()
            );
        }
        if run_all || command == "ablations" {
            println!("{}", ablations_for(campaign).render());
        }
        if run_all || command == "sampling" {
            let size = if opts.quick { 500 } else { 2_401 };
            let study = sampling_for(circuit, tb, campaign, size, 99);
            println!("{}", study.render());
        }
    }
    if run_all || command == "crossover" {
        let cycles = if opts.quick {
            vec![40, 160, 480]
        } else {
            viper_crossover_cycles()
        };
        eprintln!("crossover sweep over {cycles:?} cycles (one campaign each)...");
        let circuit = viper::viper();
        let x = crossover_for(&circuit, &cycles, stimuli::PAPER_SEED);
        println!("{}", x.render());
        if opts.csv {
            println!("{}", x.to_csv());
        }
    }

    let _ = experiments::paper_campaign; // documented entry point
    eprintln!("done in {:.1?}", start.elapsed());
}
