//! `repro` — regenerate every table and figure of the DATE'05 paper,
//! plus the engine throughput benchmark and the external-netlist
//! grading path.
//!
//! ```text
//! cargo run -p seugrade-bench --release --bin repro -- all
//! cargo run -p seugrade-bench --release --bin repro -- table2
//! cargo run -p seugrade-bench --release --bin repro -- crossover --quick
//! cargo run -p seugrade-bench --release --bin repro -- bench --threads 4
//! cargo run -p seugrade-bench --release --bin repro -- grade fixtures/s27.bench
//! ```
//!
//! Subcommands: `table1`, `table2`, `figure1`, `classification`, `speed`,
//! `crossover`, `ablations`, `sampling`, `all`, `bench`, `grade`.
//! `--quick` shrinks the crossover sweep, sample sizes and the bench
//! circuit. `--csv` additionally prints machine-readable CSV blocks.
//!
//! `bench` measures the sharded campaign engine (serial reference,
//! engine at 1/2/`--threads N` workers, plus the modelled autonomous
//! techniques) and writes the stable `seugrade-engine-bench/v1` schema
//! to `BENCH_engine.json` (`--out PATH` overrides). It is deliberately
//! *not* part of `all`: wall-clock measurement deserves an unloaded
//! machine.
//!
//! `grade <file>` imports an external netlist (ISCAS `.bench`,
//! structural BLIF or the native SNL format — auto-detected from the
//! extension, overridable with `--format bench|blif|snl`), drives it
//! with a seeded random test bench (`--vectors N`, `--seed S`), grades
//! the exhaustive `flip-flops × cycles` SEU fault space through the
//! sharded engine (`--threads N`) and prints the
//! failure/silent/latent breakdown. Verdict counts are identical at
//! every thread count (the engine's determinism guarantee). The
//! on-disk grammars are specified in `docs/FORMATS.md`.

use std::time::Instant;

use seugrade::experiments::{
    self, ablations_for, classification_for, crossover_for, figure1, sampling_for, speed_for,
    table1, table2_for, viper_crossover_cycles,
};
use seugrade::prelude::*;

struct Options {
    quick: bool,
    csv: bool,
    threads: Option<usize>,
    out: Option<String>,
    format: Option<SourceFormat>,
    vectors: usize,
    seed: u64,
}

fn parse_count(it: &mut impl Iterator<Item = String>, flag: &str) -> usize {
    let v = it.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    });
    match v.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("{flag} needs a positive integer, got `{v}`");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        quick: false,
        csv: false,
        threads: None,
        out: None,
        format: None,
        vectors: 100,
        seed: 42,
    };
    let mut commands: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--csv" => opts.csv = true,
            "--threads" => opts.threads = Some(parse_count(&mut it, "--threads")),
            "--vectors" => opts.vectors = parse_count(&mut it, "--vectors"),
            "--seed" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--seed needs a value");
                    std::process::exit(2);
                });
                opts.seed = v.parse::<u64>().unwrap_or_else(|_| {
                    eprintln!("--seed needs an integer, got `{v}`");
                    std::process::exit(2);
                });
            }
            "--format" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--format needs a value");
                    std::process::exit(2);
                });
                opts.format = Some(SourceFormat::from_label(&v).unwrap_or_else(|| {
                    eprintln!("--format expects bench|blif|snl, got `{v}`");
                    std::process::exit(2);
                }));
            }
            "--out" => {
                opts.out = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }));
            }
            s if s.starts_with("--") => {
                eprintln!("unknown flag `{s}`");
                std::process::exit(2);
            }
            _ => commands.push(a),
        }
    }
    let command = commands.first().map_or("all", String::as_str);

    let known = [
        "table1",
        "table2",
        "figure1",
        "classification",
        "speed",
        "crossover",
        "ablations",
        "sampling",
        "all",
        "bench",
        "grade",
    ];
    if !known.contains(&command) {
        eprintln!("unknown experiment `{command}`; expected one of {known:?}");
        std::process::exit(2);
    }

    let start = Instant::now();
    if command == "bench" {
        run_engine_bench(&opts);
        eprintln!("done in {:.1?}", start.elapsed());
        return;
    }
    if command == "grade" {
        let Some(file) = commands.get(1) else {
            eprintln!("usage: repro -- grade <file> [--format bench|blif|snl] [--threads N] [--vectors N] [--seed S]");
            std::process::exit(2);
        };
        run_grade(file, &opts);
        eprintln!("done in {:.1?}", start.elapsed());
        return;
    }

    let run_all = command == "all";

    // The graded campaign is shared by table2 / classification / speed.
    let campaign_needed = run_all
        || matches!(
            command,
            "table2" | "classification" | "speed" | "ablations" | "sampling"
        );
    let fixture = campaign_needed.then(|| {
        let circuit = viper::viper();
        let tb = stimuli::paper_testbench();
        eprintln!(
            "grading {} faults on {} ({} cycles)...",
            circuit.num_ffs() * tb.num_cycles(),
            circuit.name(),
            tb.num_cycles()
        );
        let campaign = AutonomousCampaign::new(&circuit, &tb);
        (circuit, tb, campaign)
    });

    if run_all || command == "figure1" {
        println!("{}", figure1().render());
    }
    if run_all || command == "table1" {
        eprintln!("mapping original, instrumented and controller netlists...");
        let t1 = table1();
        println!("{}", t1.render());
        if opts.csv {
            println!("{}", t1.to_csv());
        }
    }
    if let Some((circuit, tb, campaign)) = &fixture {
        if run_all || command == "table2" {
            let t2 = table2_for(campaign);
            println!("{}", t2.render());
            if opts.csv {
                println!("{}", t2.to_csv());
            }
        }
        if run_all || command == "classification" {
            println!("{}", classification_for(campaign).render());
        }
        if run_all || command == "speed" {
            let sample = if opts.quick { 64 } else { 512 };
            eprintln!("timing software fault simulation ({sample}-fault serial sample)...");
            let s = speed_for(circuit, tb, campaign, sample);
            println!("{}", s.render());
            println!(
                "fastest autonomous technique vs 2005 fault simulation: {:.1} orders of magnitude\n",
                s.orders_of_magnitude_vs_simulation()
            );
        }
        if run_all || command == "ablations" {
            println!("{}", ablations_for(campaign).render());
        }
        if run_all || command == "sampling" {
            let size = if opts.quick { 500 } else { 2_401 };
            let study = sampling_for(circuit, tb, campaign, size, 99);
            println!("{}", study.render());
        }
    }
    if run_all || command == "crossover" {
        let cycles = if opts.quick {
            vec![40, 160, 480]
        } else {
            viper_crossover_cycles()
        };
        eprintln!("crossover sweep over {cycles:?} cycles (one campaign each)...");
        let circuit = viper::viper();
        let x = crossover_for(&circuit, &cycles, stimuli::PAPER_SEED);
        println!("{}", x.render());
        if opts.csv {
            println!("{}", x.to_csv());
        }
    }

    let _ = experiments::paper_campaign; // documented entry point
    eprintln!("done in {:.1?}", start.elapsed());
}

/// The `bench` subcommand: measure the sharded engine, append the
/// modelled autonomous techniques, write `BENCH_engine.json`.
fn run_engine_bench(opts: &Options) {
    let threads = opts
        .threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()));
    let (circuit, tb, label) = if opts.quick {
        let circuit = registry::build("b13s").expect("registered circuit");
        let tb = Testbench::random(circuit.num_inputs(), 48, 42);
        (circuit, tb, "b13s")
    } else {
        (viper::viper(), stimuli::paper_testbench(), "viper")
    };
    let serial_sample = if opts.quick { 64 } else { 512 };
    let mut counts = vec![1, 2, threads];
    counts.sort_unstable();
    counts.dedup();

    eprintln!(
        "engine bench: {} ({} faults, {} cycles), threads {:?}...",
        label,
        circuit.num_ffs() * tb.num_cycles(),
        tb.num_cycles(),
        counts
    );
    let (mut report, run) = throughput_harness(&circuit, &tb, label, &counts, serial_sample);

    // Modelled autonomous-emulation rows for the same campaign, derived
    // from the harness's own graded outcomes (no re-grading).
    let (faults, outcomes) = run.into_single().expect("exhaustive plan");
    let n_faults = faults.len();
    let campaign =
        AutonomousCampaign::from_graded(&circuit, &tb, faults, outcomes, TimingConfig::default());
    let serial_ns_per_fault = report
        .find("serial", 1)
        .map_or(0.0, seugrade::BenchRecord::ns_per_fault);
    for technique in Technique::ALL {
        let emu = campaign.run(technique);
        let wall_ns = emu.timing.emulation_time().as_nanos();
        let ns_per_fault = wall_ns as f64 / n_faults.max(1) as f64;
        report.push(BenchRecord {
            circuit: label.to_owned(),
            technique: format!("autonomous {}", technique.label()),
            threads: 1,
            faults: n_faults,
            wall_ns,
            faults_per_sec: engine_bench::rate(n_faults, wall_ns),
            speedup_vs_serial: engine_bench::ratio(serial_ns_per_fault, ns_per_fault),
            speedup_vs_single_thread: 0.0,
        });
    }

    for r in &report.records {
        println!(
            "{:<28} threads {:>2}: {:>12.0} faults/sec ({} faults), x{:.2} vs serial, x{:.2} vs 1 thread",
            r.technique,
            r.threads,
            r.faults_per_sec,
            r.faults,
            r.speedup_vs_serial,
            r.speedup_vs_single_thread,
        );
    }

    let path = opts.out.as_deref().unwrap_or("BENCH_engine.json");
    std::fs::write(path, report.to_json()).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {path} ({} records, schema {})", report.records.len(), BENCH_SCHEMA);
}

/// The `grade` subcommand: import an external netlist, grade its
/// exhaustive SEU fault space through the sharded engine, print the
/// per-class breakdown.
fn run_grade(file: &str, opts: &Options) {
    let imported = import::import_path_with(file, opts.format, ImportOptions::default())
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        });
    let circuit = &imported.netlist;
    eprintln!("{}", imported.stats);
    eprintln!("{circuit}");

    // `--threads N` pins the worker count; otherwise defer to the
    // engine's own auto policy so `grade` resolves parallelism exactly
    // like every other engine entry point.
    let policy = opts.threads.map_or_else(ShardPolicy::auto, ShardPolicy::with_threads);
    let tb = Testbench::random(circuit.num_inputs(), opts.vectors, opts.seed);
    eprintln!(
        "grading {} faults ({} FFs x {} cycles, seed {}) on {} threads...",
        circuit.num_ffs() * tb.num_cycles(),
        circuit.num_ffs(),
        tb.num_cycles(),
        opts.seed,
        policy.resolved_threads()
    );

    let plan = CampaignPlan::builder(circuit, &tb).policy(policy).build();
    let run = plan.execute();

    println!("{} ({})", circuit.name(), file);
    for class in FaultClass::ALL {
        println!(
            "  {:<8} {:>8}  ({:.1}%)",
            class.label(),
            run.summary().count(class),
            run.summary().percent(class)
        );
    }
    println!("  {:<8} {:>8}", "total", run.summary().total());
    println!("{}", run.stats());
}
