//! `repro` — regenerate every table and figure of the DATE'05 paper,
//! plus the engine throughput benchmark and the external-netlist
//! grading path.
//!
//! ```text
//! cargo run -p seugrade-bench --release --bin repro -- all
//! cargo run -p seugrade-bench --release --bin repro -- table2
//! cargo run -p seugrade-bench --release --bin repro -- crossover --quick
//! cargo run -p seugrade-bench --release --bin repro -- bench --threads 4
//! cargo run -p seugrade-bench --release --bin repro -- grade fixtures/s27.bench
//! ```
//!
//! Subcommands: `table1`, `table2`, `figure1`, `classification`, `speed`,
//! `crossover`, `ablations`, `sampling`, `all`, `bench`, `grade`,
//! `resume`, `serve`, `submit`, `status`, `cancel`. `--quick` shrinks
//! the crossover sweep, sample sizes and the bench circuit. `--csv`
//! additionally prints machine-readable CSV blocks.
//!
//! `bench` measures the sharded campaign engine (serial reference,
//! engine at 1/2/`--threads N` workers, plus the modelled autonomous
//! techniques) and writes the stable `seugrade-engine-bench/v1` schema
//! to `BENCH_engine.json` (`--out PATH` overrides), then the streamed
//! grading scaling rows — the s5378-class fixture under `dense` vs
//! `checkpoint:64`, throughput and golden-trace memory — to the tracked
//! `BENCH_grade.json` (`seugrade-grade-bench/v1`). `--trace-policy
//! auto` widens the sweep to `checkpoint:K` for K ∈ {16, 64, 256,
//! 1024}, reports the fastest policy against dense, and re-measures
//! the winner with early fault collapse inverted (`--collapse on|off`
//! picks the mode for every other row). The grade rows always end with
//! a single-core **kernel sweep** — `generic` vs `tape` vs
//! `differential` over the exhaustive s5378g space, digests asserted
//! identical — and one s38417g-class (~10k FF) scale row. It is
//! deliberately *not* part of `all`: wall-clock measurement deserves an
//! unloaded machine.
//!
//! `grade <target>` loads a circuit — a bundled registry name
//! (`repro -- grade s5378g`) or an external netlist file (ISCAS
//! `.bench`, structural BLIF or the native SNL format — auto-detected
//! from the extension, overridable with `--format bench|blif|snl|verilog|vhdl`) —
//! drives it with a seeded random test bench (`--vectors N`,
//! `--seed S`) and grades the `flip-flops × cycles` SEU fault space
//! (or a seeded uniform `--sample N` of it) through the engine's
//! memory-bounded **streaming** path (`--threads N`), printing the
//! failure/silent/latent breakdown, the golden-trace bits the
//! `--trace-policy dense|checkpoint:K` actually held, and the
//! order-independent verdict digest. Verdicts are identical at every
//! thread count and trace policy (the engine's determinism guarantee).
//! The on-disk grammars are specified in `docs/FORMATS.md`.
//!
//! With `--checkpoint PATH` the grade rides the engine's **resumable**
//! path: progress is persisted atomically every `--checkpoint-every N`
//! chunks (default 256), Ctrl-C / SIGTERM drains the in-flight chunks,
//! writes a final checkpoint and exits with code 130, and
//! `repro -- resume PATH` rebuilds the campaign from the checkpoint's
//! own metadata, verifies the fingerprint against the reconstructed
//! plan, and continues from the saved cursor — the resumed verdict
//! digest is bit-identical to an uninterrupted run at any thread count.
//! A corrupt, truncated or mismatched checkpoint is rejected with a
//! line-numbered error and a non-zero exit, never a panic.
//!
//! `grade --progress json` additionally emits one `seugrade-serve/v1`
//! chunk event per graded chunk as a JSON line on **stderr** (stdout
//! keeps the human report) — the same serializer the daemon streams to
//! its subscribers.
//!
//! `serve` runs the campaign daemon (`--addr HOST:PORT`, `--workers N`,
//! `--spool DIR`): campaign jobs arrive as `seugrade-serve/v1` JSON
//! lines, any number of concurrent campaigns multiplex over one shared
//! worker pool, every job checkpoints to its spool directory, and
//! SIGINT/SIGTERM (or a protocol `shutdown`) drains in-flight rounds,
//! writes final checkpoints and exits 0 — a restarted daemon resumes
//! every incomplete spooled job. `submit <circuit-or-file>` (grade-style
//! flags; `--wait` blocks until terminal), `status [job]` (also honors
//! `--wait`) and `cancel <job>` are the matching clients; see
//! `docs/PROTOCOL.md`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use seugrade::experiments::{
    self, ablations_for, classification_for, crossover_for, figure1, sampling_for, speed_for,
    table1, table2_for, viper_crossover_cycles,
};
use seugrade::prelude::*;

struct Options {
    quick: bool,
    csv: bool,
    threads: Option<usize>,
    out: Option<String>,
    format: Option<SourceFormat>,
    vectors: usize,
    seed: u64,
    trace_policy: TracePolicy,
    /// `--trace-policy auto`: sweep K ∈ {16, 64, 256, 1024} plus dense
    /// in `bench` and report the fastest policy.
    trace_policy_auto: bool,
    collapse: Collapse,
    /// `--kernel auto|generic|tape|differential`: the faulty-evaluation
    /// kernel workers grade with (a pure speed knob; verdicts and
    /// digests never change).
    kernel: Kernel,
    sample: Option<usize>,
    checkpoint: Option<String>,
    checkpoint_every: usize,
    /// `--progress json`: per-chunk `seugrade-serve/v1` events on stderr.
    progress_json: bool,
    addr: String,
    workers: usize,
    spool: String,
    wait: bool,
}

/// Exit code for a run interrupted by SIGINT/SIGTERM after draining
/// in-flight work and writing a final checkpoint (128 + SIGINT).
const EXIT_INTERRUPTED: i32 = 130;

fn parse_count(it: &mut impl Iterator<Item = String>, flag: &str) -> usize {
    let v = it.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    });
    match v.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("{flag} needs a positive integer, got `{v}`");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        quick: false,
        csv: false,
        threads: None,
        out: None,
        format: None,
        vectors: 100,
        seed: 42,
        trace_policy: TracePolicy::Dense,
        trace_policy_auto: false,
        collapse: Collapse::Early,
        kernel: Kernel::Auto,
        sample: None,
        checkpoint: None,
        checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
        progress_json: false,
        addr: seugrade_serve::DEFAULT_ADDR.to_owned(),
        workers: seugrade_serve::DEFAULT_WORKERS,
        spool: "serve-spool".to_owned(),
        wait: false,
    };
    let mut commands: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--csv" => opts.csv = true,
            "--threads" => opts.threads = Some(parse_count(&mut it, "--threads")),
            "--vectors" => opts.vectors = parse_count(&mut it, "--vectors"),
            "--seed" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--seed needs a value");
                    std::process::exit(2);
                });
                opts.seed = v.parse::<u64>().unwrap_or_else(|_| {
                    eprintln!("--seed needs an integer, got `{v}`");
                    std::process::exit(2);
                });
            }
            "--trace-policy" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--trace-policy needs a value");
                    std::process::exit(2);
                });
                if v == "auto" {
                    opts.trace_policy_auto = true;
                } else {
                    opts.trace_policy = TracePolicy::from_label(&v).unwrap_or_else(|| {
                        eprintln!("--trace-policy expects dense|checkpoint:<K>|auto, got `{v}`");
                        std::process::exit(2);
                    });
                }
            }
            "--collapse" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--collapse needs a value");
                    std::process::exit(2);
                });
                opts.collapse = Collapse::from_label(&v).unwrap_or_else(|| {
                    eprintln!("--collapse expects on|off, got `{v}`");
                    std::process::exit(2);
                });
            }
            "--kernel" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--kernel needs a value");
                    std::process::exit(2);
                });
                opts.kernel = Kernel::from_label(&v).unwrap_or_else(|| {
                    eprintln!("--kernel expects auto|generic|tape|differential, got `{v}`");
                    std::process::exit(2);
                });
            }
            "--sample" => opts.sample = Some(parse_count(&mut it, "--sample")),
            "--checkpoint" => {
                opts.checkpoint = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--checkpoint needs a path");
                    std::process::exit(2);
                }));
            }
            "--checkpoint-every" => {
                opts.checkpoint_every = parse_count(&mut it, "--checkpoint-every");
            }
            "--format" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--format needs a value");
                    std::process::exit(2);
                });
                opts.format = Some(SourceFormat::from_label(&v).unwrap_or_else(|| {
                    eprintln!("--format expects bench|blif|snl|verilog|vhdl, got `{v}`");
                    std::process::exit(2);
                }));
            }
            "--out" => {
                opts.out = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }));
            }
            "--progress" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--progress needs a value");
                    std::process::exit(2);
                });
                if v != "json" {
                    eprintln!("--progress expects json, got `{v}`");
                    std::process::exit(2);
                }
                opts.progress_json = true;
            }
            "--addr" => {
                opts.addr = it.next().unwrap_or_else(|| {
                    eprintln!("--addr needs a host:port value");
                    std::process::exit(2);
                });
            }
            "--workers" => opts.workers = parse_count(&mut it, "--workers"),
            "--spool" => {
                opts.spool = it.next().unwrap_or_else(|| {
                    eprintln!("--spool needs a directory");
                    std::process::exit(2);
                });
            }
            "--wait" => opts.wait = true,
            s if s.starts_with("--") => {
                eprintln!("unknown flag `{s}`");
                std::process::exit(2);
            }
            _ => commands.push(a),
        }
    }
    let command = commands.first().map_or("all", String::as_str);

    let known = [
        "table1",
        "table2",
        "figure1",
        "classification",
        "speed",
        "crossover",
        "ablations",
        "sampling",
        "all",
        "bench",
        "grade",
        "resume",
        "serve",
        "submit",
        "status",
        "cancel",
    ];
    if !known.contains(&command) {
        eprintln!("unknown experiment `{command}`; expected one of {known:?}");
        std::process::exit(2);
    }

    if opts.trace_policy_auto && command != "bench" {
        eprintln!("--trace-policy auto is a bench sweep; pick a concrete policy for `{command}`");
        std::process::exit(2);
    }

    let start = Instant::now();
    if command == "bench" {
        run_engine_bench(&opts);
        eprintln!("done in {:.1?}", start.elapsed());
        return;
    }
    if command == "grade" {
        let Some(target) = commands.get(1) else {
            eprintln!(
                "usage: repro -- grade <file-or-registry-name> [--format bench|blif|snl|verilog|vhdl] \
                 [--threads N] [--vectors N] [--seed S] [--trace-policy dense|checkpoint:K] \
                 [--kernel auto|generic|tape|differential] [--sample N] [--checkpoint PATH] \
                 [--checkpoint-every N]"
            );
            std::process::exit(2);
        };
        run_grade(target, &opts);
        eprintln!("done in {:.1?}", start.elapsed());
        return;
    }
    if command == "resume" {
        let Some(path) = commands.get(1) else {
            eprintln!("usage: repro -- resume <checkpoint-path> [--threads N] [--checkpoint-every N]");
            std::process::exit(2);
        };
        run_resume(path, &opts);
        eprintln!("done in {:.1?}", start.elapsed());
        return;
    }
    if command == "serve" {
        run_serve(&opts);
        return;
    }
    if command == "submit" {
        let Some(target) = commands.get(1) else {
            eprintln!(
                "usage: repro -- submit <file-or-registry-name> [--addr HOST:PORT] \
                 [--format bench|blif|snl|verilog|vhdl] [--threads N] [--vectors N] [--seed S] \
                 [--trace-policy dense|checkpoint:K] [--collapse on|off] [--sample N] [--wait]"
            );
            std::process::exit(2);
        };
        run_submit(target, &opts);
        return;
    }
    if command == "status" {
        run_status(commands.get(1).map(String::as_str), &opts);
        return;
    }
    if command == "cancel" {
        let Some(job) = commands.get(1) else {
            eprintln!("usage: repro -- cancel <job-id> [--addr HOST:PORT]");
            std::process::exit(2);
        };
        run_cancel(job, &opts);
        return;
    }

    let run_all = command == "all";

    // The graded campaign is shared by table2 / classification / speed.
    let campaign_needed = run_all
        || matches!(
            command,
            "table2" | "classification" | "speed" | "ablations" | "sampling"
        );
    let fixture = campaign_needed.then(|| {
        let circuit = viper::viper();
        let tb = stimuli::paper_testbench();
        eprintln!(
            "grading {} faults on {} ({} cycles)...",
            circuit.num_ffs() * tb.num_cycles(),
            circuit.name(),
            tb.num_cycles()
        );
        let campaign = AutonomousCampaign::new(&circuit, &tb);
        (circuit, tb, campaign)
    });

    if run_all || command == "figure1" {
        println!("{}", figure1().render());
    }
    if run_all || command == "table1" {
        eprintln!("mapping original, instrumented and controller netlists...");
        let t1 = table1();
        println!("{}", t1.render());
        if opts.csv {
            println!("{}", t1.to_csv());
        }
    }
    if let Some((circuit, tb, campaign)) = &fixture {
        if run_all || command == "table2" {
            let t2 = table2_for(campaign);
            println!("{}", t2.render());
            if opts.csv {
                println!("{}", t2.to_csv());
            }
        }
        if run_all || command == "classification" {
            println!("{}", classification_for(campaign).render());
        }
        if run_all || command == "speed" {
            let sample = if opts.quick { 64 } else { 512 };
            eprintln!("timing software fault simulation ({sample}-fault serial sample)...");
            let s = speed_for(circuit, tb, campaign, sample);
            println!("{}", s.render());
            println!(
                "fastest autonomous technique vs 2005 fault simulation: {:.1} orders of magnitude\n",
                s.orders_of_magnitude_vs_simulation()
            );
        }
        if run_all || command == "ablations" {
            println!("{}", ablations_for(campaign).render());
        }
        if run_all || command == "sampling" {
            let size = if opts.quick { 500 } else { 2_401 };
            let study = sampling_for(circuit, tb, campaign, size, 99);
            println!("{}", study.render());
        }
    }
    if run_all || command == "crossover" {
        let cycles = if opts.quick {
            vec![40, 160, 480]
        } else {
            viper_crossover_cycles()
        };
        eprintln!("crossover sweep over {cycles:?} cycles (one campaign each)...");
        let circuit = viper::viper();
        let x = crossover_for(&circuit, &cycles, stimuli::PAPER_SEED);
        println!("{}", x.render());
        if opts.csv {
            println!("{}", x.to_csv());
        }
    }

    let _ = experiments::paper_campaign; // documented entry point
    eprintln!("done in {:.1?}", start.elapsed());
}

/// The `bench` subcommand: measure the sharded engine, append the
/// modelled autonomous techniques, write `BENCH_engine.json`.
fn run_engine_bench(opts: &Options) {
    let threads = opts
        .threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()));
    let (circuit, tb, label) = if opts.quick {
        let circuit = registry::build("b13s").expect("registered circuit");
        let tb = Testbench::random(circuit.num_inputs(), 48, 42);
        (circuit, tb, "b13s")
    } else {
        (viper::viper(), stimuli::paper_testbench(), "viper")
    };
    let serial_sample = if opts.quick { 64 } else { 512 };
    let mut counts = vec![1, 2, threads];
    counts.sort_unstable();
    counts.dedup();

    eprintln!(
        "engine bench: {} ({} faults, {} cycles), threads {:?}...",
        label,
        circuit.num_ffs() * tb.num_cycles(),
        tb.num_cycles(),
        counts
    );
    let (mut report, run) = throughput_harness(&circuit, &tb, label, &counts, serial_sample);

    // Modelled autonomous-emulation rows for the same campaign, derived
    // from the harness's own graded outcomes (no re-grading).
    let (faults, outcomes) = run.into_single().expect("exhaustive plan");
    let n_faults = faults.len();
    let campaign =
        AutonomousCampaign::from_graded(&circuit, &tb, faults, outcomes, TimingConfig::default());
    let serial_ns_per_fault = report
        .find("serial", 1)
        .map_or(0.0, seugrade::BenchRecord::ns_per_fault);
    for technique in Technique::ALL {
        let emu = campaign.run(technique);
        let wall_ns = emu.timing.emulation_time().as_nanos();
        let ns_per_fault = wall_ns as f64 / n_faults.max(1) as f64;
        report.push(BenchRecord {
            circuit: label.to_owned(),
            technique: format!("autonomous {}", technique.label()),
            threads: 1,
            faults: n_faults,
            wall_ns,
            faults_per_sec: engine_bench::rate(n_faults, wall_ns),
            speedup_vs_serial: engine_bench::ratio(serial_ns_per_fault, ns_per_fault),
            speedup_vs_single_thread: 0.0,
            host_cores: engine_bench::host_cores(),
        });
    }

    for r in &report.records {
        println!(
            "{:<28} threads {:>2}: {:>12.0} faults/sec ({} faults), x{:.2} vs serial, x{:.2} vs 1 thread",
            r.technique,
            r.threads,
            r.faults_per_sec,
            r.faults,
            r.speedup_vs_serial,
            r.speedup_vs_single_thread,
        );
    }

    let path = opts.out.as_deref().unwrap_or("BENCH_engine.json");
    std::fs::write(path, report.to_json()).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {path} ({} records, schema {})", report.records.len(), BENCH_SCHEMA);

    run_grade_scaling(opts, threads);
    run_serve_bench(opts, threads);
}

/// The multi-tenant serve rows of the `bench` subcommand: an in-process
/// daemon grades 1, 4 and 16 concurrent copies of the same sampled
/// campaign over a shared worker pool, every digest is checked against
/// the solo reference, and jobs/sec plus aggregate faults/sec go to the
/// tracked `BENCH_serve.json` (`seugrade-serve-bench/v1`).
fn run_serve_bench(opts: &Options, threads: usize) {
    let (name, vectors, sample, round) =
        if opts.quick { ("b13s", 48, 256, 8) } else { ("s5378g", 256, 2_048, 16) };
    let mut spec = JobSpec::registry(name);
    spec.vectors = vectors;
    spec.sample = Some(sample);
    spec.round = round;
    spec.trace_policy = opts.trace_policy;
    spec.collapse = opts.collapse;
    let workers = threads.clamp(1, 4);
    eprintln!(
        "serve bench: {name} ({sample} sampled faults/job, round {round}), {workers} workers, \
         1/4/16 concurrent jobs..."
    );
    let report = seugrade_serve::bench::multi_tenant_sweep(&spec, workers).unwrap_or_else(|e| {
        eprintln!("serve bench failed: {e}");
        std::process::exit(1);
    });
    for r in &report.records {
        println!(
            "{:<8} workers {:>2} concurrent {:>2}: {:>8.2} jobs/sec, {:>12.0} faults/sec \
             ({} jobs, all digests == solo)",
            r.circuit, r.workers, r.concurrent, r.jobs_per_sec, r.faults_per_sec, r.jobs,
        );
    }
    let path = "BENCH_serve.json";
    std::fs::write(path, report.to_json()).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "wrote {path} ({} records, schema {})",
        report.records.len(),
        seugrade_serve::SERVE_BENCH_SCHEMA
    );
}

/// The streamed-grading scaling rows of the `bench` subcommand: the
/// s5378-class fixture (1536 FFs) over a long bench, dense vs
/// checkpointed, measuring throughput *and* golden-trace memory —
/// written to the tracked `BENCH_grade.json` perf snapshot.
///
/// With `--trace-policy auto` the sweep covers `checkpoint:K` for
/// K ∈ {16, 64, 256, 1024} alongside dense and reports the fastest
/// policy; the default pair stays `dense` vs `checkpoint:64`. Every
/// row is graded under the requested `--collapse` mode; with `auto`
/// the winning checkpoint policy is re-measured with collapse
/// inverted so the record shows what early collapse buys.
///
/// Two row groups always follow the policy sweep: the single-core
/// **kernel sweep** (`generic` / `tape` / `differential` over the
/// exhaustive s5378g space, one worker, digests asserted bit-identical)
/// and one s38417g-class (~10k FF) scale row.
fn run_grade_scaling(opts: &Options, threads: usize) {
    let circuit = registry::build("s5378g").expect("registered scale fixture");
    let (cycles, sample) = if opts.quick { (512, 8_192) } else { (4_096, 65_536) };
    let tb = Testbench::random(circuit.num_inputs(), cycles, 42);
    eprintln!(
        "grade scaling: s5378g ({} FFs, {} cycles, {} sampled of {} faults)...",
        circuit.num_ffs(),
        cycles,
        sample,
        circuit.num_ffs() * cycles,
    );
    let policies: Vec<TracePolicy> = if opts.trace_policy_auto {
        let mut p = vec![TracePolicy::Dense];
        p.extend([16, 64, 256, 1024].map(TracePolicy::Checkpoint));
        p
    } else {
        vec![TracePolicy::Dense, TracePolicy::Checkpoint(64)]
    };
    let mut grade_report = GradeBenchReport::new();
    let mut digests = Vec::new();
    let mut measure = |policy: TracePolicy, collapse: Collapse| -> f64 {
        let plan = CampaignPlan::builder(&circuit, &tb)
            .sampled(sample, 7)
            .policy(ShardPolicy { threads, serial_below: 0 })
            .trace_policy(policy)
            .collapse(collapse)
            .kernel(opts.kernel)
            .build();
        let engine = Engine::new(&plan);
        let run = engine.run_streamed(&plan);
        digests.push(run.digest());
        let stored = engine.grader().golden().stored_bits();
        let dense_bits = engine.grader().golden().dense_equivalent_bits();
        let rate = engine_bench::rate(run.stats().faults, run.stats().wall_ns);
        println!(
            "{:<16} collapse {:<3} threads {:>2}: {:>12.0} faults/sec ({} faults), golden {} bits (dense {} bits, x{:.1})",
            policy.label(),
            collapse.label(),
            run.stats().threads,
            rate,
            run.stats().faults,
            stored,
            dense_bits,
            engine_bench::ratio(dense_bits as f64, stored as f64),
        );
        grade_report.push(GradeRecord {
            circuit: circuit.name().to_owned(),
            policy: policy.label(),
            threads: run.stats().threads,
            ffs: circuit.num_ffs(),
            cycles,
            faults: run.stats().faults,
            source: format!("sampled:{sample}"),
            wall_ns: run.stats().wall_ns,
            faults_per_sec: rate,
            golden_stored_bits: stored,
            golden_dense_bits: dense_bits,
            collapse: collapse.label().to_owned(),
            kernel: opts.kernel.resolve().label().to_owned(),
            host_cores: engine_bench::host_cores(),
        });
        rate
    };
    let mut rates = Vec::new();
    for &policy in &policies {
        rates.push((policy, measure(policy, opts.collapse)));
    }
    let dense_rate = rates[0].1;
    if opts.trace_policy_auto {
        let &(winner, winner_rate) = rates[1..]
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("auto sweep has checkpoint rows");
        // Show what early collapse buys on the winning policy: one extra
        // row with the collapse mode inverted.
        let inverted = match opts.collapse {
            Collapse::Early => Collapse::Horizon,
            Collapse::Horizon => Collapse::Early,
        };
        let inverted_rate = measure(winner, inverted);
        let (on_rate, off_rate) = match opts.collapse {
            Collapse::Early => (winner_rate, inverted_rate),
            Collapse::Horizon => (inverted_rate, winner_rate),
        };
        println!(
            "auto-selected {} ({:.2}x dense; early collapse {:.2}x over horizon walks)",
            winner.label(),
            engine_bench::ratio(winner_rate, dense_rate),
            engine_bench::ratio(on_rate, off_rate),
        );
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "trace policies must agree fault for fault"
    );

    // Kernel sweep: the same circuit over the **exhaustive** fault space
    // on one worker — the single-core faults/sec comparison across
    // faulty-evaluation kernels. Bit-identical digests across the sweep
    // are asserted, not assumed.
    let exhaustive = circuit.num_ffs() * cycles;
    eprintln!(
        "kernel sweep: s5378g exhaustive ({exhaustive} faults, checkpoint:64, 1 thread)..."
    );
    let mut kernel_digests = Vec::new();
    for kernel in Kernel::CONCRETE {
        let plan = CampaignPlan::builder(&circuit, &tb)
            .policy(ShardPolicy { threads: 1, serial_below: 0 })
            .trace_policy(TracePolicy::Checkpoint(64))
            .collapse(opts.collapse)
            .kernel(kernel)
            .build();
        let engine = Engine::new(&plan);
        let run = engine.run_streamed(&plan);
        kernel_digests.push(run.digest());
        let rate = engine_bench::rate(run.stats().faults, run.stats().wall_ns);
        println!(
            "kernel {:<12} threads  1: {:>12.0} faults/sec ({} faults)",
            kernel.label(),
            rate,
            run.stats().faults,
        );
        grade_report.push(GradeRecord {
            circuit: circuit.name().to_owned(),
            policy: TracePolicy::Checkpoint(64).label(),
            threads: 1,
            ffs: circuit.num_ffs(),
            cycles,
            faults: run.stats().faults,
            source: "exhaustive".to_owned(),
            wall_ns: run.stats().wall_ns,
            faults_per_sec: rate,
            golden_stored_bits: engine.grader().golden().stored_bits(),
            golden_dense_bits: engine.grader().golden().dense_equivalent_bits(),
            collapse: opts.collapse.label().to_owned(),
            kernel: kernel.label().to_owned(),
            host_cores: engine_bench::host_cores(),
        });
    }
    assert!(
        kernel_digests.windows(2).all(|w| w[0] == w[1]),
        "kernels must agree fault for fault"
    );

    // Scale row: the s38417-class fixture (~10k flip-flops) through the
    // same streamed path — one row showing throughput holds at 6.7x the
    // flip-flop count.
    let scale = registry::build("s38417g").expect("registered scale fixture");
    let (scale_cycles, scale_sample) = if opts.quick { (128, 4_096) } else { (1_024, 32_768) };
    let scale_tb = Testbench::random(scale.num_inputs(), scale_cycles, 42);
    eprintln!(
        "scale row: s38417g ({} FFs, {scale_cycles} cycles, {scale_sample} sampled faults)...",
        scale.num_ffs(),
    );
    let plan = CampaignPlan::builder(&scale, &scale_tb)
        .sampled(scale_sample, 7)
        .policy(ShardPolicy { threads, serial_below: 0 })
        .trace_policy(TracePolicy::Checkpoint(64))
        .collapse(opts.collapse)
        .kernel(opts.kernel)
        .build();
    let engine = Engine::new(&plan);
    let run = engine.run_streamed(&plan);
    let rate = engine_bench::rate(run.stats().faults, run.stats().wall_ns);
    println!(
        "{:<16} collapse {:<3} threads {:>2}: {:>12.0} faults/sec ({} faults) on s38417g",
        TracePolicy::Checkpoint(64).label(),
        opts.collapse.label(),
        run.stats().threads,
        rate,
        run.stats().faults,
    );
    grade_report.push(GradeRecord {
        circuit: scale.name().to_owned(),
        policy: TracePolicy::Checkpoint(64).label(),
        threads: run.stats().threads,
        ffs: scale.num_ffs(),
        cycles: scale_cycles,
        faults: run.stats().faults,
        source: format!("sampled:{scale_sample}"),
        wall_ns: run.stats().wall_ns,
        faults_per_sec: rate,
        golden_stored_bits: engine.grader().golden().stored_bits(),
        golden_dense_bits: engine.grader().golden().dense_equivalent_bits(),
        collapse: opts.collapse.label().to_owned(),
        kernel: opts.kernel.resolve().label().to_owned(),
        host_cores: engine_bench::host_cores(),
    });

    let path = "BENCH_grade.json";
    std::fs::write(path, grade_report.to_json()).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "wrote {path} ({} records, schema {})",
        grade_report.records.len(),
        GRADE_BENCH_SCHEMA
    );
}

/// The `grade` subcommand: load a circuit (bundled registry name or
/// external netlist file), grade its SEU fault space — exhaustive, or a
/// seeded uniform sample with `--sample N` — through the engine's
/// memory-bounded **streaming** path under the requested
/// `--trace-policy`, and print the per-class breakdown plus the
/// golden-trace memory the policy actually held.
fn run_grade(target: &str, opts: &Options) {
    let circuit = load_circuit(target, opts.format);
    eprintln!("{circuit}");

    // `--threads N` pins the worker count; otherwise defer to the
    // engine's own auto policy so `grade` resolves parallelism exactly
    // like every other engine entry point.
    let policy = opts.threads.map_or_else(ShardPolicy::auto, ShardPolicy::with_threads);
    let tb = Testbench::random(circuit.num_inputs(), opts.vectors, opts.seed);
    let space = circuit.num_ffs() * tb.num_cycles();
    let faults = opts.sample.map_or(space, |n| n.min(space));
    eprintln!(
        "grading {} of {} faults ({} FFs x {} cycles, seed {}, {}, kernel {}) on {} threads...",
        faults,
        space,
        circuit.num_ffs(),
        tb.num_cycles(),
        opts.seed,
        opts.trace_policy,
        opts.kernel.resolve(),
        policy.resolved_threads()
    );

    let mut builder = CampaignPlan::builder(&circuit, &tb)
        .policy(policy)
        .trace_policy(opts.trace_policy)
        .collapse(opts.collapse)
        .kernel(opts.kernel);
    if let Some(count) = opts.sample {
        builder = builder.sampled(count, opts.seed);
    }
    let plan = builder.build();
    let engine = Engine::new(&plan);

    if let Some(path) = &opts.checkpoint {
        let mut ropts = ResumeOptions::checkpoint_to(path);
        ropts.every = opts.checkpoint_every;
        ropts.cancel = Some(signal_cancel_token());
        ropts.meta = grade_meta(target, opts);
        ropts.progress = progress_hook(opts);
        let run = engine.run_streamed_resumable(&plan, &ropts).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        });
        finish_resumable(&circuit, target, &engine, path, &run);
    } else if opts.progress_json {
        // Same one-shot semantics as the streamed path, but through the
        // resumable runner (no checkpoint) so the per-chunk hook fires.
        let mut ropts = ResumeOptions::default();
        ropts.progress = progress_hook(opts);
        let run = engine.run_streamed_resumable(&plan, &ropts).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        });
        print_streamed_report(&circuit, target, &engine, run.sink.summary(), &run.stats, run.sink.digest());
    } else {
        let run = engine.run_streamed(&plan);
        print_streamed_report(&circuit, target, &engine, run.summary(), run.stats(), run.digest());
    }
}

/// With `--progress json`: a hook that prints each chunk's
/// `seugrade-serve/v1` event line on stderr — the exact serializer the
/// daemon streams to subscribers, minus the job tag.
fn progress_hook(opts: &Options) -> Option<ProgressHook> {
    opts.progress_json.then(|| {
        ProgressHook::new(|ev| eprintln!("{}", seugrade_serve::proto::chunk_event_line(None, &ev)))
    })
}

/// The `resume` subcommand: load a checkpoint, rebuild the campaign from
/// the metadata the `grade` run stored in it, verify the fingerprint and
/// continue from the saved cursor. A second interruption writes another
/// checkpoint and exits 130 again — resume is idempotent.
fn run_resume(path: &str, opts: &Options) {
    let ck = Checkpoint::load(std::path::Path::new(path)).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let fp = ck.fingerprint();
    let target = ck.meta_get("target").unwrap_or_else(|| {
        eprintln!("checkpoint has no `target` metadata; it was not written by `repro -- grade`");
        std::process::exit(1);
    });
    let format = ck.meta_get("format").map(|v| {
        SourceFormat::from_label(v).unwrap_or_else(|| {
            eprintln!("checkpoint stores unknown source format `{v}`");
            std::process::exit(1);
        })
    });
    let vectors = resume_meta_count(&ck, "vectors");
    let seed = resume_meta_count(&ck, "seed") as u64;
    let sample = ck.meta_get("sample").map(|_| resume_meta_count(&ck, "sample"));
    let trace_policy = TracePolicy::from_label(&fp.trace_policy).unwrap_or_else(|| {
        eprintln!("checkpoint stores unknown trace policy `{}`", fp.trace_policy);
        std::process::exit(1);
    });
    eprintln!(
        "resuming `{}` from {}: chunk {}/{}, {}/{} faults graded",
        target,
        path,
        ck.chunks_done(),
        fp.chunks,
        ck.faults_done(),
        fp.faults,
    );

    let circuit = load_circuit(target, format);
    let policy = opts.threads.map_or_else(ShardPolicy::auto, ShardPolicy::with_threads);
    let tb = Testbench::random(circuit.num_inputs(), vectors, seed);
    let mut builder = CampaignPlan::builder(&circuit, &tb)
        .policy(policy)
        .trace_policy(trace_policy)
        .collapse(opts.collapse)
        .kernel(opts.kernel);
    if let Some(count) = sample {
        builder = builder.sampled(count, seed);
    }
    let plan = builder.build();
    let engine = Engine::new(&plan);

    let mut ropts = ResumeOptions::resume_from(path);
    ropts.every = opts.checkpoint_every;
    ropts.cancel = Some(signal_cancel_token());
    let target = target.to_owned();
    let run = engine.run_streamed_resumable(&plan, &ropts).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    finish_resumable(&circuit, &target, &engine, path, &run);
}

/// The `serve` subcommand: run the campaign daemon until a protocol
/// `shutdown` or SIGINT/SIGTERM, then drain in-flight jobs (each writes
/// a final atomic checkpoint to its spool directory) and exit 0.
fn run_serve(opts: &Options) {
    let config = ServerConfig {
        addr: opts.addr.clone(),
        workers: opts.workers,
        spool: opts.spool.clone().into(),
    };
    let mut server = Server::bind(&config).unwrap_or_else(|e| {
        eprintln!("cannot start daemon on {}: {e}", config.addr);
        std::process::exit(1);
    });
    eprintln!(
        "seugrade-serve listening on {} ({} workers, spool {})",
        server.local_addr(),
        config.workers,
        config.spool.display(),
    );
    server.serve_until(&signal_cancel_token());
    eprintln!("shutting down: draining in-flight jobs and writing final checkpoints...");
    server.shutdown();
    eprintln!("daemon stopped; spool {} is consistent", config.spool.display());
}

/// Connects to the daemon at `--addr`, exiting 1 with a message when it
/// is not reachable.
fn connect_client(opts: &Options) -> Client {
    Client::connect(&opts.addr as &str).unwrap_or_else(|e| {
        eprintln!("cannot reach daemon at {}: {e}", opts.addr);
        std::process::exit(1);
    })
}

/// Unwraps a client call, exiting 1 with the server's (or transport's)
/// message on failure.
fn client_ok<T>(result: Result<T, ClientError>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    })
}

/// The `submit` subcommand: build a job spec from grade-style flags —
/// registry circuits travel by name, external netlist files inline —
/// submit it, and with `--wait` block until the job is terminal.
fn run_submit(target: &str, opts: &Options) {
    let circuit = if registry::build(target).is_some() {
        CircuitSource::Registry(target.to_owned())
    } else {
        let format = opts
            .format
            .or_else(|| {
                let ext = std::path::Path::new(target).extension()?.to_str()?;
                SourceFormat::from_label(ext)
            })
            .unwrap_or_else(|| {
                eprintln!(
                    "`{target}` is not a registry circuit and its format is not recognizable \
                     from the extension; pass --format bench|blif|snl|verilog|vhdl"
                );
                std::process::exit(2);
            });
        let source = std::fs::read_to_string(target).unwrap_or_else(|e| {
            eprintln!("cannot read {target}: {e}");
            std::process::exit(1);
        });
        CircuitSource::Inline { format, source }
    };
    let spec = JobSpec {
        circuit,
        vectors: opts.vectors,
        seed: opts.seed,
        sample: opts.sample,
        trace_policy: opts.trace_policy,
        collapse: opts.collapse,
        threads: opts.threads.unwrap_or(1),
        round: opts.checkpoint_every,
    };
    let mut client = connect_client(opts);
    let id = client_ok(client.submit(&spec));
    eprintln!("submitted {target} as {id}");
    if opts.wait {
        let snapshot = client_ok(client.wait(&id, Duration::from_secs(3600)));
        println!("{}", snapshot.to_line());
        let state = snapshot.get("state").and_then(seugrade_serve::json::Value::as_str);
        if state != Some("done") {
            std::process::exit(1);
        }
    } else {
        println!("{id}");
    }
}

/// The `status` subcommand: one job's snapshot, or every job's. With
/// `--wait`, block until the named job reaches a terminal state and
/// exit 1 unless that state is `done`.
fn run_status(job: Option<&str>, opts: &Options) {
    let mut client = connect_client(opts);
    match job {
        Some(id) if opts.wait => {
            let snapshot = client_ok(client.wait(id, Duration::from_secs(3600)));
            println!("{}", snapshot.to_line());
            let state = snapshot.get("state").and_then(seugrade_serve::json::Value::as_str);
            if state != Some("done") {
                std::process::exit(1);
            }
        }
        Some(id) => println!("{}", client_ok(client.status(id)).to_line()),
        None => {
            for snapshot in client_ok(client.list()) {
                println!("{}", snapshot.to_line());
            }
        }
    }
}

/// The `cancel` subcommand: cooperative cancellation; the job's spooled
/// checkpoint survives, so a protocol `resume` can continue it later.
fn run_cancel(job: &str, opts: &Options) {
    let mut client = connect_client(opts);
    let v = client_ok(client.cancel(job));
    println!("{}", v.to_line());
}

/// Resolves a grade/resume target: bundled registry name first, external
/// netlist file otherwise. Load failures exit 1 with the importer's
/// line-numbered message.
fn load_circuit(target: &str, format: Option<SourceFormat>) -> Netlist {
    if let Some(circuit) = registry::build(target) {
        eprintln!("registry circuit `{target}`");
        circuit
    } else {
        let imported = import::import_path_with(target, format, ImportOptions::default())
            .unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            });
        eprintln!("{}", imported.stats);
        imported.netlist
    }
}

/// Everything `resume` needs to rebuild the campaign plan from the
/// checkpoint file alone (the fingerprint then cross-checks the result).
fn grade_meta(target: &str, opts: &Options) -> Vec<(String, String)> {
    let mut meta = vec![
        ("target".to_owned(), target.to_owned()),
        ("vectors".to_owned(), opts.vectors.to_string()),
        ("seed".to_owned(), opts.seed.to_string()),
    ];
    if let Some(format) = opts.format {
        meta.push(("format".to_owned(), format.label().to_owned()));
    }
    if let Some(count) = opts.sample {
        meta.push(("sample".to_owned(), count.to_string()));
    }
    meta
}

/// Parses a numeric metadata value out of a checkpoint, exiting with a
/// structured message when it is missing or malformed.
fn resume_meta_count(ck: &Checkpoint, key: &str) -> usize {
    let v = ck.meta_get(key).unwrap_or_else(|| {
        eprintln!("checkpoint has no `{key}` metadata; it was not written by `repro -- grade`");
        std::process::exit(1);
    });
    v.parse().unwrap_or_else(|_| {
        eprintln!("checkpoint metadata `{key}` is not a number: `{v}`");
        std::process::exit(1);
    })
}

/// Prints the outcome of a resumable invocation: the full report when the
/// campaign finished, or the checkpoint cursor + exit 130 when it was
/// interrupted by Ctrl-C / SIGTERM (or a chunk limit).
fn finish_resumable(
    circuit: &Netlist,
    target: &str,
    engine: &Engine,
    path: &str,
    run: &ResumableRun<StreamAccumulator>,
) {
    if run.resumed_from > 0 {
        eprintln!("resumed from chunk {}/{}", run.resumed_from, run.chunks_total);
    }
    if run.interrupted {
        eprintln!(
            "interrupted at chunk {}/{} ({}/{} faults); checkpoint written to {path}",
            run.chunks_done, run.chunks_total, run.faults_done, run.faults_total,
        );
        eprintln!("resume with: repro -- resume {path}");
        std::process::exit(EXIT_INTERRUPTED);
    }
    print_streamed_report(circuit, target, engine, run.sink.summary(), &run.stats, run.sink.digest());
}

/// The shared grade/resume report: per-class breakdown, engine stats,
/// golden-trace memory and the order-independent verdict digest.
fn print_streamed_report(
    circuit: &Netlist,
    target: &str,
    engine: &Engine,
    summary: &GradingSummary,
    stats: &EngineStats,
    digest: u64,
) {
    println!("{} ({})", circuit.name(), target);
    for class in FaultClass::ALL {
        println!(
            "  {:<8} {:>8}  ({:.1}%)",
            class.label(),
            summary.count(class),
            summary.percent(class)
        );
    }
    println!("  {:<8} {:>8}", "total", summary.total());
    println!("{stats}");
    let golden = engine.grader().golden();
    let dense_bits = golden.dense_equivalent_bits();
    println!(
        "golden trace: {} bits held ({}), {} bits dense equivalent (x{:.1} smaller), verdict digest {:#018x}",
        golden.stored_bits(),
        golden.policy(),
        dense_bits,
        engine_bench::ratio(dense_bits as f64, golden.stored_bits() as f64),
        digest,
    );
}

/// Set by the signal handler; bridged to a [`CancelToken`] by a watcher
/// thread (signal handlers must only touch async-signal-safe state).
static INTERRUPT_FLAG: AtomicBool = AtomicBool::new(false);

extern "C" fn note_interrupt(_signum: i32) {
    INTERRUPT_FLAG.store(true, Ordering::SeqCst);
}

/// Installs SIGINT/SIGTERM handlers (via libc's `signal`, which std
/// already links — no external crates) and returns a [`CancelToken`]
/// that a watcher thread trips once a signal lands. The engine observes
/// the token at chunk boundaries, drains in-flight work, writes a final
/// checkpoint and returns with `interrupted = true`.
fn signal_cancel_token() -> CancelToken {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    // SAFETY: `note_interrupt` only stores to a static atomic, which is
    // async-signal-safe; `signal` is the C standard library's own entry
    // point and both signal numbers are valid on Linux.
    unsafe {
        signal(SIGINT, note_interrupt as extern "C" fn(i32) as usize);
        signal(SIGTERM, note_interrupt as extern "C" fn(i32) as usize);
    }
    let token = CancelToken::new();
    let watched = token.clone();
    std::thread::spawn(move || loop {
        if INTERRUPT_FLAG.load(Ordering::SeqCst) {
            eprintln!("signal received; draining in-flight chunks...");
            watched.cancel();
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    });
    token
}
