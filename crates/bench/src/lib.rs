//! Shared fixtures for the seugrade benchmark harness.
//!
//! The interesting artifacts of this crate are:
//!
//! - the `repro` binary (`cargo run -p seugrade-bench --release --bin
//!   repro -- all`, source in `src/bin/repro.rs`), which regenerates
//!   every table and figure of the DATE'05 paper;
//! - the criterion benches (`cargo bench -p seugrade-bench`), which
//!   measure the engines themselves (simulator throughput, bit-parallel
//!   fault-simulation speedup, instrumentation and campaign cost).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use seugrade::prelude::*;

/// A medium-sized fixture: the b13-style circuit with a 128-cycle bench.
#[must_use]
pub fn medium_fixture() -> (Netlist, Testbench) {
    let circuit = registry::build("b13s").expect("registered circuit");
    let tb = Testbench::random(circuit.num_inputs(), 128, 42);
    (circuit, tb)
}

/// A small fixture for per-iteration benches: b06-style, 64 cycles.
#[must_use]
pub fn small_fixture() -> (Netlist, Testbench) {
    let circuit = registry::build("b06s").expect("registered circuit");
    let tb = Testbench::random(circuit.num_inputs(), 64, 42);
    (circuit, tb)
}

/// The paper fixture: Viper + 160 biased instruction vectors.
#[must_use]
pub fn paper_fixture() -> (Netlist, Testbench) {
    (viper::viper(), stimuli::paper_testbench())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_consistent() {
        let (c, tb) = medium_fixture();
        assert_eq!(c.num_inputs(), tb.num_inputs());
        let (c, tb) = small_fixture();
        assert_eq!(c.num_inputs(), tb.num_inputs());
        let (c, tb) = paper_fixture();
        assert_eq!(c.num_inputs(), tb.num_inputs());
        assert_eq!(c.num_ffs(), 215);
    }
}
