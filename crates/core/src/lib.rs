//! `seugrade` — fast transient fault grading based on autonomous
//! emulation.
//!
//! A from-scratch, software-complete reproduction of López-Ongil et al.,
//! *"Techniques for Fast Transient Fault Grading Based on Autonomous
//! Emulation"* (DATE 2005): SEU fault-injection campaigns for gate-level
//! circuits, executed three ways —
//!
//! - software fault simulation (serial and 64-way bit-parallel), the
//!   paper's baseline, scaled out by the sharded multi-threaded
//!   `seugrade-engine` campaign runtime;
//! - a host-controlled emulation model (Civera et al. \[2\]), the paper's
//!   prior art;
//! - the **autonomous emulation system** with its three instrumentation
//!   techniques (mask-scan, state-scan, time-multiplexed), including real
//!   netlist transforms, cycle-accurate campaign timing, RAM planning and
//!   FPGA resource estimation.
//!
//! This facade crate re-exports the workspace and adds the
//! [`experiments`] module, which regenerates every table and figure of
//! the paper, plus plain-text [`tables`] rendering.
//!
//! Seven runnable examples under the repository's `examples/` directory
//! (`quickstart`, `viper_campaign`, `technique_tradeoffs`,
//! `custom_circuit`, `import_netlist`, `hardening_loop`, `waveforms`)
//! walk the public API end to end; start with
//! `cargo run --release --example quickstart`.
//!
//! # Quickstart
//!
//! ```
//! use seugrade::prelude::*;
//!
//! // A circuit (8-bit LFSR), a test bench, a campaign:
//! let circuit = generators::lfsr(8, &[7, 5, 4, 3]);
//! let tb = Testbench::constant_low(0, 32);
//! let campaign = AutonomousCampaign::new(&circuit, &tb);
//!
//! // Grade with the paper's fastest technique:
//! let report = campaign.run(Technique::TimeMux);
//! println!("{report}");
//! assert_eq!(report.summary.total(), 8 * 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod paper;
pub mod tables;

/// One-stop imports for applications.
pub mod prelude {
    pub use seugrade_circuits::{fixtures, generators, registry, small, stimuli, viper};
    pub use seugrade_emulation::campaign::{
        AutonomousCampaign, CampaignSink, EmulationReport, StreamedCampaign,
        StreamedCampaignStatus, Technique,
    };
    pub use seugrade_engine::bench as engine_bench;
    pub use seugrade_engine::{
        throughput_harness, BenchRecord, BenchReport, CampaignPlan, CampaignPlanBuilder,
        CampaignRun, CancelToken, Checkpoint, Engine, EngineError, EngineStats, FaultPlan,
        FaultSource, Fingerprint, GradeBenchReport, GradeRecord, PersistentSink, ProgressCounter,
        ProgressEvent, ProgressHook, ResumableRun, ResumeError, ResumeOptions, ShardPolicy,
        StreamAccumulator,
        StreamedRun, VerdictSink, BENCH_SCHEMA, CKPT_SCHEMA, DEFAULT_CHECKPOINT_EVERY,
        GRADE_BENCH_SCHEMA,
    };
    pub use seugrade_emulation::controller::{CampaignTiming, ClockHz, TimingConfig};
    pub use seugrade_emulation::hostlink::HostLinkModel;
    pub use seugrade_emulation::instrument;
    pub use seugrade_faultsim::sampling::{estimate_classes, wilson_interval, ClassEstimate};
    pub use seugrade_faultsim::{
        multi, report, Collapse, Fault, FaultClass, FaultList, FaultOutcome, GradeScratch,
        Grader, GradingSummary, MultiFault, DEFAULT_WINDOW_CACHE_SPANS,
    };
    pub use seugrade_harden::{dwc, tmr};
    pub use seugrade_netlist::{
        import, FfIndex, GateKind, ImportError, ImportOptions, ImportStats, Imported, Netlist,
        NetlistBuilder, NetlistError, SigId, SourceFormat,
    };
    pub use seugrade_rtl::{Reg, RtlBuilder, Word};
    pub use seugrade_serve::{
        Client, ClientError, CircuitSource, JobSpec, JobState, Server, ServerConfig,
        ServeBenchReport, SERVE_SCHEMA,
    };
    pub use seugrade_sim::{
        equiv_check, CompiledSim, Counterexample, EventSim, GoldenTrace, Kernel, SplitMix64,
        Testbench, TracePolicy, TraceWindow, WindowCache,
    };
    pub use seugrade_techmap::{map_luts, BramEstimate, MapperConfig, ResourceReport};
}

pub use prelude::*;
