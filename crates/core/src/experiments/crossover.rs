//! Experiment X1 — the mask-scan/state-scan crossover (§III).
//!
//! The paper observes that state-scan loses on b14 because scanning 215
//! flip-flops per fault costs more than replaying a 160-cycle prefix, and
//! claims the method "improves when the number of cycles is higher than
//! the flip-flop number". This experiment turns that sentence into a
//! measured curve: per-fault emulation cycles of all three techniques as
//! the test-bench length sweeps past the flip-flop count.

use seugrade_circuits::stimuli;
use seugrade_emulation::campaign::{AutonomousCampaign, Technique};
use seugrade_netlist::Netlist;

use crate::tables::{fixed, Align, TextTable};

/// One sweep point.
#[derive(Clone, Copy, Debug)]
pub struct CrossoverPoint {
    /// Test-bench cycles at this point.
    pub num_cycles: usize,
    /// Circuit flip-flops (constant across the sweep).
    pub num_ffs: usize,
    /// Mask-scan cycles per fault.
    pub mask_cpf: f64,
    /// State-scan cycles per fault.
    pub state_cpf: f64,
    /// Time-mux cycles per fault.
    pub tmux_cpf: f64,
}

/// The measured crossover curve.
#[derive(Clone, Debug)]
pub struct Crossover {
    /// Sweep points in increasing cycle count.
    pub points: Vec<CrossoverPoint>,
}

/// The cycle counts swept for the Viper crossover experiment. The
/// flip-flop count is 215, so the interesting region is both sides of
/// roughly `2 × 215 = 430` cycles (a fault at the average injection
/// point replays half the bench under mask-scan).
#[must_use]
pub fn viper_crossover_cycles() -> Vec<usize> {
    vec![40, 80, 160, 320, 640, 960]
}

/// Runs the crossover sweep on one circuit: for each test-bench length,
/// grade the exhaustive fault list and evaluate each technique's
/// per-fault cycle cost. Stimuli come from the Viper biased instruction
/// generator when the circuit has 32 inputs, uniform random bits
/// otherwise.
#[must_use]
pub fn crossover_for(circuit: &Netlist, cycle_counts: &[usize], seed: u64) -> Crossover {
    let points = cycle_counts
        .iter()
        .map(|&num_cycles| {
            let tb = if circuit.num_inputs() == seugrade_circuits::viper::NUM_INPUTS {
                stimuli::viper_program(num_cycles, seed)
            } else {
                seugrade_sim::Testbench::random(circuit.num_inputs(), num_cycles, seed)
            };
            let campaign = AutonomousCampaign::new(circuit, &tb);
            let cpf = |t: Technique| campaign.run(t).timing.cycles_per_fault();
            CrossoverPoint {
                num_cycles,
                num_ffs: circuit.num_ffs(),
                mask_cpf: cpf(Technique::MaskScan),
                state_cpf: cpf(Technique::StateScan),
                tmux_cpf: cpf(Technique::TimeMux),
            }
        })
        .collect();
    Crossover { points }
}

impl Crossover {
    /// The smallest swept cycle count where state-scan beats mask-scan,
    /// if the sweep reaches it.
    #[must_use]
    pub fn crossover_cycles(&self) -> Option<usize> {
        self.points
            .iter()
            .find(|p| p.state_cpf < p.mask_cpf)
            .map(|p| p.num_cycles)
    }

    /// Renders the curve plus the paper's qualitative claim.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            ("bench cycles", Align::Right),
            ("flip-flops", Align::Right),
            ("mask cyc/fault", Align::Right),
            ("state cyc/fault", Align::Right),
            ("tmux cyc/fault", Align::Right),
            ("winner (scan pair)", Align::Left),
        ]);
        for p in &self.points {
            t.row(vec![
                p.num_cycles.to_string(),
                p.num_ffs.to_string(),
                fixed(p.mask_cpf, 1),
                fixed(p.state_cpf, 1),
                fixed(p.tmux_cpf, 1),
                if p.state_cpf < p.mask_cpf { "state-scan" } else { "mask-scan" }.into(),
            ]);
        }
        let verdict = match self.crossover_cycles() {
            Some(c) => format!("state-scan overtakes mask-scan at {c} cycles"),
            None => "no crossover within the sweep".to_owned(),
        };
        format!(
            "Crossover sweep (paper: state-scan improves when cycles > flip-flops)\n{}\n{verdict}\n",
            t.render()
        )
    }

    /// CSV form.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut t = TextTable::new(vec![
            ("num_cycles", Align::Right),
            ("num_ffs", Align::Right),
            ("mask_cpf", Align::Right),
            ("state_cpf", Align::Right),
            ("tmux_cpf", Align::Right),
        ]);
        for p in &self.points {
            t.row(vec![
                p.num_cycles.to_string(),
                p.num_ffs.to_string(),
                fixed(p.mask_cpf, 3),
                fixed(p.state_cpf, 3),
                fixed(p.tmux_cpf, 3),
            ]);
        }
        t.to_csv()
    }
}

#[cfg(test)]
mod tests {
    use seugrade_circuits::generators::{self, RandomCircuitConfig};

    use super::*;

    #[test]
    fn crossover_happens_on_small_circuit() {
        // 12 flip-flops, moderate observability: sweeping the bench well
        // past the flip-flop count must flip the winner.
        let cfg = RandomCircuitConfig {
            num_ffs: 12,
            num_gates: 60,
            num_outputs: 2,
            observability_num: 1,
            ..Default::default()
        };
        let circuit = generators::random_sequential(&cfg, 3);
        let x = crossover_for(&circuit, &[8, 64, 256], 9);
        assert_eq!(x.points.len(), 3);
        // At 8 cycles (<< 12 ffs) mask-scan wins; by 256 cycles
        // state-scan must win.
        let first = &x.points[0];
        let last = &x.points[2];
        assert!(first.mask_cpf < first.state_cpf, "{first:?}");
        assert!(last.state_cpf < last.mask_cpf, "{last:?}");
        assert!(x.crossover_cycles().is_some());
        assert!(x.render().contains("overtakes"));
    }

    #[test]
    fn time_mux_always_wins() {
        let circuit = generators::lfsr(10, &[9, 6]);
        let x = crossover_for(&circuit, &[16, 64, 128], 5);
        for p in &x.points {
            assert!(p.tmux_cpf < p.mask_cpf, "{p:?}");
            assert!(p.tmux_cpf < p.state_cpf, "{p:?}");
        }
    }
}
