//! Experiment A1 (extension) — ablating each technique's key mechanism.
//!
//! Not in the paper; DESIGN.md calls these out as the design choices
//! worth quantifying. Each row compares a technique's cycle cost with
//! one mechanism removed (or, for mask-scan, added).

use seugrade_emulation::ablation::{
    mask_scan_with_state_compare, state_scan_without_overlap, time_mux_without_early_silent,
};
use seugrade_emulation::campaign::{AutonomousCampaign, Technique};
use seugrade_emulation::controller::TimingConfig;

use crate::tables::{fixed, Align, TextTable};

/// One ablation row.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// What was changed.
    pub label: String,
    /// Baseline µs/fault.
    pub baseline_us: f64,
    /// Variant µs/fault.
    pub variant_us: f64,
}

impl AblationRow {
    /// Cost ratio variant/baseline.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.variant_us / self.baseline_us
    }
}

/// The ablation study over one campaign.
#[derive(Clone, Debug)]
pub struct Ablations {
    /// One row per mechanism.
    pub rows: Vec<AblationRow>,
}

/// Runs the three ablations on a graded campaign.
#[must_use]
pub fn ablations_for(campaign: &AutonomousCampaign) -> Ablations {
    let cfg = TimingConfig::default();
    let faults = campaign.faults();
    let outcomes = campaign.outcomes();
    let n_cycles = campaign.num_cycles();
    let n_ffs = campaign.num_ffs();

    let tmux_base = campaign.run(Technique::TimeMux).timing;
    let tmux_abl = time_mux_without_early_silent(faults, outcomes, n_cycles, &cfg);
    let state_base = campaign.run(Technique::StateScan).timing;
    let state_abl = state_scan_without_overlap(faults, outcomes, n_cycles, n_ffs, &cfg);
    let mask_base = campaign.run(Technique::MaskScan).timing;
    let mask_upg = mask_scan_with_state_compare(faults, outcomes, n_cycles, &cfg);

    Ablations {
        rows: vec![
            AblationRow {
                label: "time-mux - early silent detection".into(),
                baseline_us: tmux_base.us_per_fault(),
                variant_us: tmux_abl.us_per_fault(),
            },
            AblationRow {
                label: "state-scan - overlapped scan-out".into(),
                baseline_us: state_base.us_per_fault(),
                variant_us: state_abl.us_per_fault(),
            },
            AblationRow {
                label: "mask-scan + per-cycle state compare".into(),
                baseline_us: mask_base.us_per_fault(),
                variant_us: mask_upg.us_per_fault(),
            },
        ],
    }
}

impl Ablations {
    /// Renders the study.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            ("mechanism", Align::Left),
            ("baseline us/fault", Align::Right),
            ("variant us/fault", Align::Right),
            ("ratio", Align::Right),
        ]);
        for row in &self.rows {
            t.row(vec![
                row.label.clone(),
                fixed(row.baseline_us, 2),
                fixed(row.variant_us, 2),
                fixed(row.ratio(), 2),
            ]);
        }
        format!("Ablation study (design-choice contributions)\n{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use seugrade_circuits::generators::{random_sequential, RandomCircuitConfig};
    use seugrade_sim::Testbench;

    use super::*;

    #[test]
    fn ablations_have_expected_directions() {
        let cfg = RandomCircuitConfig {
            num_ffs: 10,
            num_gates: 60,
            observability_num: 2,
            ..Default::default()
        };
        let circuit = random_sequential(&cfg, 7);
        let tb = Testbench::random(circuit.num_inputs(), 48, 7);
        let campaign = AutonomousCampaign::new(&circuit, &tb);
        let a = ablations_for(&campaign);
        assert_eq!(a.rows.len(), 3);
        // Removing early-silent and overlap hurts; adding state-compare helps.
        assert!(a.rows[0].ratio() >= 1.0, "{}", a.rows[0].ratio());
        assert!(a.rows[1].ratio() >= 1.0, "{}", a.rows[1].ratio());
        assert!(a.rows[2].ratio() <= 1.0, "{}", a.rows[2].ratio());
        assert!(a.render().contains("Ablation"));
    }
}
