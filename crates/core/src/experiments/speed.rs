//! Experiment S1 — speed comparison across evaluation methods (§III).
//!
//! The paper's headline claim: autonomous emulation is orders of
//! magnitude faster than fault simulation (1300 µs/fault on a 2005
//! workstation) and than host-controlled emulation [2] (≈100 µs/fault).
//! This experiment reports, for one campaign:
//!
//! - our own software fault simulators, **measured** (serial on a fault
//!   sample, bit-parallel exhaustive);
//! - the host-link model of [2];
//! - the three autonomous techniques' modelled emulation times;
//! - the paper's published constants for the 2005 baselines.

use std::time::Instant;

use seugrade_emulation::campaign::{AutonomousCampaign, Technique};
use seugrade_emulation::hostlink::HostLinkModel;
use seugrade_engine::{CampaignPlan, Engine, ShardPolicy};
use seugrade_faultsim::{FaultList, Grader};
use seugrade_netlist::Netlist;
use seugrade_sim::Testbench;

use crate::paper;
use crate::tables::{fixed, Align, TextTable};

/// Where a number comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// Wall-clock measured in this process.
    Measured,
    /// Computed by a calibrated model.
    Modelled,
    /// Quoted from the paper.
    Paper,
}

impl Source {
    fn label(self) -> &'static str {
        match self {
            Source::Measured => "measured",
            Source::Modelled => "model",
            Source::Paper => "paper (2005)",
        }
    }
}

/// One comparison row.
#[derive(Clone, Debug)]
pub struct SpeedRow {
    /// Method label.
    pub label: String,
    /// Average µs per fault.
    pub us_per_fault: f64,
    /// Provenance.
    pub source: Source,
}

/// The full comparison.
#[derive(Clone, Debug)]
pub struct SpeedComparison {
    /// Rows, slowest first.
    pub rows: Vec<SpeedRow>,
}

/// Builds the speed comparison for a campaign.
///
/// `serial_sample` bounds the number of faults timed with the serial
/// simulator (it exists to keep the slowest engine's measurement
/// affordable; the µs/fault extrapolates linearly).
#[must_use]
pub fn speed_for(
    circuit: &Netlist,
    tb: &Testbench,
    campaign: &AutonomousCampaign,
    serial_sample: usize,
) -> SpeedComparison {
    let grader = Grader::new(circuit, tb);
    let mut rows = Vec::new();

    // Paper baselines.
    rows.push(SpeedRow {
        label: "fault simulation (workstation)".into(),
        us_per_fault: paper::FAULT_SIM_US_PER_FAULT,
        source: Source::Paper,
    });
    rows.push(SpeedRow {
        label: "host-controlled emulation [2]".into(),
        us_per_fault: paper::HOST_EMULATION_US_PER_FAULT,
        source: Source::Paper,
    });

    // Measured: serial software fault simulation on a sample.
    let sample = FaultList::sampled(
        circuit.num_ffs(),
        tb.num_cycles(),
        serial_sample,
        paper::B14_CYCLES as u64,
    );
    if !sample.is_empty() {
        let start = Instant::now();
        let outcomes = grader.run_serial(sample.as_slice());
        let dt = start.elapsed();
        assert_eq!(outcomes.len(), sample.len());
        rows.push(SpeedRow {
            label: "fault simulation (this host, serial)".into(),
            us_per_fault: dt.as_secs_f64() * 1e6 / sample.len() as f64,
            source: Source::Measured,
        });
    }

    // Measured: bit-parallel software fault simulation, exhaustive.
    let faults = FaultList::exhaustive(circuit.num_ffs(), tb.num_cycles());
    let start = Instant::now();
    let outcomes = grader.run_parallel(faults.as_slice());
    let dt = start.elapsed();
    rows.push(SpeedRow {
        label: "fault simulation (this host, 64-way parallel)".into(),
        us_per_fault: dt.as_secs_f64() * 1e6 / faults.len() as f64,
        source: Source::Measured,
    });

    // Measured: the sharded multi-threaded engine, exhaustive.
    let plan = CampaignPlan::builder(circuit, tb)
        .policy(ShardPolicy { threads: 0, serial_below: 0 })
        .build();
    let engine_run = Engine::for_circuit(circuit, tb).run(&plan);
    let threads = engine_run.stats().threads;
    rows.push(SpeedRow {
        label: format!("fault simulation (this host, engine, {threads} threads)"),
        us_per_fault: engine_run.stats().us_per_fault(),
        source: Source::Measured,
    });

    // Modelled: host-controlled emulation on this campaign.
    let host = HostLinkModel::paper_reference();
    rows.push(SpeedRow {
        label: "host-controlled emulation (model)".into(),
        us_per_fault: host.us_per_fault(&outcomes, tb.num_cycles()),
        source: Source::Modelled,
    });

    // Modelled: the three autonomous techniques.
    for technique in Technique::ALL {
        let report = campaign.run(technique);
        rows.push(SpeedRow {
            label: format!("autonomous {}", technique.label()),
            us_per_fault: report.timing.us_per_fault(),
            source: Source::Modelled,
        });
    }

    rows.sort_by(|a, b| b.us_per_fault.total_cmp(&a.us_per_fault));
    SpeedComparison { rows }
}

impl SpeedComparison {
    /// Renders the comparison, slowest method first.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            ("method", Align::Left),
            ("us/fault", Align::Right),
            ("source", Align::Left),
        ]);
        for row in &self.rows {
            t.row(vec![
                row.label.clone(),
                fixed(row.us_per_fault, 3),
                row.source.label().to_owned(),
            ]);
        }
        format!("Speed comparison (one fault-grading campaign)\n{}", t.render())
    }

    /// Looks up a row by label prefix.
    #[must_use]
    pub fn find(&self, prefix: &str) -> Option<&SpeedRow> {
        self.rows.iter().find(|r| r.label.starts_with(prefix))
    }

    /// Speedup of the fastest autonomous technique over the paper's
    /// fault-simulation constant — the "orders of magnitude" claim.
    #[must_use]
    pub fn orders_of_magnitude_vs_simulation(&self) -> f64 {
        let fastest = self
            .rows
            .iter()
            .filter(|r| r.label.starts_with("autonomous"))
            .map(|r| r.us_per_fault)
            .fold(f64::INFINITY, f64::min);
        (paper::FAULT_SIM_US_PER_FAULT / fastest).log10()
    }
}

#[cfg(test)]
mod tests {
    use seugrade_circuits::generators;

    use super::*;

    #[test]
    fn comparison_contains_all_methods() {
        let circuit = generators::lfsr(8, &[7, 5, 4, 3]);
        let tb = Testbench::constant_low(0, 16);
        let campaign = AutonomousCampaign::new(&circuit, &tb);
        let s = speed_for(&circuit, &tb, &campaign, 32);
        assert!(s.rows.len() >= 8);
        assert!(s.find("fault simulation (workstation)").is_some());
        assert!(s.find("fault simulation (this host, engine").is_some());
        assert!(s.find("autonomous Time Multiplex.").is_some());
        // Sorted descending.
        for pair in s.rows.windows(2) {
            assert!(pair[0].us_per_fault >= pair[1].us_per_fault);
        }
        assert!(s.render().contains("us/fault"));
    }

    #[test]
    fn autonomous_beats_2005_baselines() {
        let circuit = generators::lfsr(10, &[9, 6]);
        let tb = Testbench::constant_low(0, 24);
        let campaign = AutonomousCampaign::new(&circuit, &tb);
        let s = speed_for(&circuit, &tb, &campaign, 16);
        let tmux = s.find("autonomous Time Multiplex.").unwrap().us_per_fault;
        assert!(tmux < paper::HOST_EMULATION_US_PER_FAULT);
        assert!(s.orders_of_magnitude_vs_simulation() > 2.0, "orders of magnitude");
    }
}
