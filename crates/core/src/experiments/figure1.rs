//! Experiment F1 — Figure 1, the time-multiplexed instrument.

use seugrade_circuits::generators;
use seugrade_emulation::instrument::time_mux;
use seugrade_netlist::GateKind;
use seugrade_techmap::{map_luts, MapperConfig};

/// Structural reproduction of Figure 1: the per-flip-flop instrument's
/// cell inventory, measured from an actual instrumentation of a
/// single-flip-flop circuit, plus its 4-LUT cost.
#[derive(Clone, Debug)]
pub struct Figure1 {
    /// Flip-flops per instrument (golden, faulty, mask, state).
    pub dffs: usize,
    /// Multiplexers per instrument.
    pub muxes: usize,
    /// XOR gates per instrument (inject flip + mismatch comparator).
    pub xors: usize,
    /// 4-input LUTs the instrument's logic maps to.
    pub luts: usize,
}

/// Builds and measures the Figure 1 instrument.
#[must_use]
pub fn figure1() -> Figure1 {
    // A single flip-flop with trivial surroundings isolates the
    // instrument itself.
    let unit = generators::shift_register(1);
    let inst = time_mux::instrument(&unit);
    let stats = inst.netlist().stats();
    let mapping = map_luts(inst.netlist(), &MapperConfig::virtex_e());
    Figure1 {
        dffs: stats.num_ffs(),
        muxes: stats.gate_count(GateKind::Mux),
        xors: stats.gate_count(GateKind::Xor),
        luts: mapping.num_luts(),
    }
}

impl Figure1 {
    /// Renders the instrument diagram with the measured inventory.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            r#"Figure 1. Instrument for the time-multiplexed technique
(per original flip-flop; measured from the netlist transform)

                 +-------------+
   DataIn ------>| GOLDEN  dff |--GoldenQ---+---------------+
   (shared       |  en=EnaG    |            |               |
   comb network) |  ld=LoadSt  |<-StateQ    +--> DataOut ---+--> to comb
                 +-------------+            |   (sel mux)   |    network
                 +-------------+            |               |
   DataIn ------>| FAULTY  dff |--FaultyQ---+          +----+----+
                 |  en=EnaF    |                       |   XOR   |--+
                 |  inj=Inject |<--GoldenQ xor MaskQ   +---------+  |
                 +-------------+                                    v
                 +-------------+       +-------------+      state_diff
   ScanIn ------>| MASK    dff |------>| STATE   dff |      (OR tree)
   (chain)       |  en=ScanEn  | SaveQ |  en=SaveSt  |
                 +-------------+       +-------------+

measured inventory per instrument:
  flip-flops : {dffs}   (golden, faulty, mask, state)
  muxes      : {muxes}   (DataOut sel, golden en+restore, faulty en+inject,
               mask shift, state save)
  xors       : {xors}   (injection flip, golden/faulty comparator)
  4-LUT cost : {luts}
"#,
            dffs = self.dffs,
            muxes = self.muxes,
            xors = self.xors,
            luts = self.luts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_matches_transform_constants() {
        let f = figure1();
        let expected: std::collections::HashMap<&str, usize> =
            time_mux::figure1_inventory().into_iter().collect();
        assert_eq!(f.dffs, expected["dff"]);
        assert_eq!(f.muxes, expected["mux"]);
        assert_eq!(f.xors, expected["xor"]);
        assert!(f.luts >= 4, "instrument logic costs LUTs: {}", f.luts);
    }

    #[test]
    fn render_shows_ports() {
        let text = figure1().render();
        for needle in ["GOLDEN", "FAULTY", "MASK", "STATE", "state_diff", "DataOut"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
