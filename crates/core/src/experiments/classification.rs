//! Experiment C1 — fault-classification percentages (§III).

use seugrade_emulation::campaign::AutonomousCampaign;
use seugrade_faultsim::{FaultClass, GradingSummary};

use crate::paper;
use crate::tables::{fixed, Align, TextTable};

/// Measured classification distribution with the paper's reference.
#[derive(Clone, Debug)]
pub struct Classification {
    /// Measured tallies.
    pub summary: GradingSummary,
    /// Total faults graded.
    pub total: usize,
}

/// Extracts the classification experiment from a graded campaign.
#[must_use]
pub fn classification_for(campaign: &AutonomousCampaign) -> Classification {
    Classification {
        summary: campaign.summary().clone(),
        total: campaign.faults().len(),
    }
}

impl Classification {
    /// Measured percentage for a class.
    #[must_use]
    pub fn percent(&self, class: FaultClass) -> f64 {
        self.summary.percent(class)
    }

    /// Renders measured vs paper percentages.
    #[must_use]
    pub fn render(&self) -> String {
        let (pf, pl, ps) = paper::CLASSIFICATION_PCT;
        let mut t = TextTable::new(vec![
            ("class", Align::Left),
            ("count", Align::Right),
            ("measured %", Align::Right),
            ("paper %", Align::Right),
        ]);
        for (class, paper_pct) in [
            (FaultClass::Failure, pf),
            (FaultClass::Latent, pl),
            (FaultClass::Silent, ps),
        ] {
            t.row(vec![
                class.label().to_owned(),
                self.summary.count(class).to_string(),
                fixed(self.summary.percent(class), 1),
                fixed(paper_pct, 1),
            ]);
        }
        format!(
            "Fault classification of {} single faults (measured vs paper)\n{}",
            self.total,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use seugrade_circuits::generators;
    use seugrade_sim::Testbench;

    use super::*;

    #[test]
    fn classification_totals() {
        let circuit = generators::lfsr(8, &[7, 5, 4, 3]);
        let tb = Testbench::constant_low(0, 12);
        let campaign = AutonomousCampaign::new(&circuit, &tb);
        let c = classification_for(&campaign);
        assert_eq!(c.total, 96);
        let sum = c.percent(FaultClass::Failure)
            + c.percent(FaultClass::Latent)
            + c.percent(FaultClass::Silent);
        assert!((sum - 100.0).abs() < 1e-9);
        assert!(c.render().contains("paper %"));
    }
}
