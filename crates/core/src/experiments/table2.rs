//! Experiment T2 — Table 2, emulation time results.

use seugrade_emulation::campaign::{AutonomousCampaign, Technique};

use crate::paper;
use crate::tables::{fixed, Align, TextTable};

/// One measured Table 2 row.
#[derive(Clone, Copy, Debug)]
pub struct Table2Row {
    /// Technique.
    pub technique: Technique,
    /// Total emulation clock cycles.
    pub total_cycles: u64,
    /// Emulation time in ms at the campaign clock.
    pub emulation_ms: f64,
    /// Average speed in µs/fault.
    pub us_per_fault: f64,
}

/// Measured Table 2.
#[derive(Clone, Debug)]
pub struct Table2 {
    /// One row per technique, paper order.
    pub rows: Vec<Table2Row>,
}

/// Regenerates Table 2 from a graded campaign.
#[must_use]
pub fn table2_for(campaign: &AutonomousCampaign) -> Table2 {
    let rows = Technique::ALL
        .iter()
        .map(|&technique| {
            let report = campaign.run(technique);
            Table2Row {
                technique,
                total_cycles: report.timing.total_cycles,
                emulation_ms: report.timing.millis(),
                us_per_fault: report.timing.us_per_fault(),
            }
        })
        .collect();
    Table2 { rows }
}

impl Table2 {
    /// Renders measured vs paper values.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            ("autonomous system", Align::Left),
            ("cycles", Align::Right),
            ("emulation ms", Align::Right),
            ("us/fault", Align::Right),
            ("paper ms", Align::Right),
            ("paper us/fault", Align::Right),
        ]);
        for (row, p) in self.rows.iter().zip(paper::TABLE2.iter()) {
            t.row(vec![
                row.technique.label().to_owned(),
                row.total_cycles.to_string(),
                fixed(row.emulation_ms, 2),
                fixed(row.us_per_fault, 2),
                fixed(p.emulation_ms, 2),
                fixed(p.us_per_fault, 2),
            ]);
        }
        format!("Table 2. Time results at 25 MHz (measured vs paper)\n{}", t.render())
    }

    /// The row of one technique.
    ///
    /// # Panics
    ///
    /// Panics if the technique is missing (cannot happen for tables from
    /// [`table2_for`]).
    #[must_use]
    pub fn row(&self, technique: Technique) -> &Table2Row {
        self.rows
            .iter()
            .find(|r| r.technique == technique)
            .expect("all techniques present")
    }

    /// CSV form.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut t = TextTable::new(vec![
            ("technique", Align::Left),
            ("total_cycles", Align::Right),
            ("emulation_ms", Align::Right),
            ("us_per_fault", Align::Right),
        ]);
        for row in &self.rows {
            t.row(vec![
                row.technique.label().to_owned(),
                row.total_cycles.to_string(),
                fixed(row.emulation_ms, 4),
                fixed(row.us_per_fault, 4),
            ]);
        }
        t.to_csv()
    }
}

#[cfg(test)]
mod tests {
    use seugrade_circuits::{stimuli, viper};
    use seugrade_sim::Testbench;

    use super::*;

    #[test]
    fn shape_on_small_campaign() {
        let circuit = seugrade_circuits::generators::lfsr(8, &[7, 5, 4, 3]);
        let tb = Testbench::constant_low(0, 20);
        let campaign = AutonomousCampaign::new(&circuit, &tb);
        let t = table2_for(&campaign);
        assert_eq!(t.rows.len(), 3);
        assert!(t.render().contains("Table 2"));
        assert_eq!(t.to_csv().lines().count(), 4);
        // All-output LFSR: every fault detected at injection, so
        // time-mux is far ahead.
        assert!(t.row(Technique::TimeMux).us_per_fault < t.row(Technique::MaskScan).us_per_fault);
    }

    #[test]
    #[ignore = "full paper campaign; run with --ignored (slow in debug builds)"]
    fn paper_ordering_on_viper() {
        let circuit = viper::viper();
        let tb = stimuli::paper_testbench();
        let campaign = AutonomousCampaign::new(&circuit, &tb);
        let t = table2_for(&campaign);
        let mask = t.row(Technique::MaskScan).us_per_fault;
        let state = t.row(Technique::StateScan).us_per_fault;
        let tmux = t.row(Technique::TimeMux).us_per_fault;
        // The paper's ordering: time-mux < mask-scan < state-scan
        // (because 160 bench cycles < 215 flip-flops).
        assert!(tmux < mask && mask < state, "{tmux} {mask} {state}");
        // And its scale: all three within the same decade as published.
        assert!((0.1..5.0).contains(&tmux), "{tmux}");
        assert!((1.0..20.0).contains(&mask), "{mask}");
        assert!((3.0..40.0).contains(&state), "{state}");
    }
}
