//! Experiment A2 (extension) — statistical fault sampling.
//!
//! Grades a uniform sample of the fault space and checks the Wilson 95 %
//! intervals against the exhaustive campaign — the quantitative case for
//! replacing exhaustive grading on larger designs.

use seugrade_emulation::campaign::AutonomousCampaign;
use seugrade_faultsim::sampling::{estimate_classes, ClassEstimate};
use seugrade_faultsim::{FaultList, Grader, GradingSummary};
use seugrade_netlist::Netlist;
use seugrade_sim::Testbench;

use crate::tables::{fixed, Align, TextTable};

/// Result of the sampling experiment.
#[derive(Clone, Debug)]
pub struct SamplingStudy {
    /// Sample size graded.
    pub sample_size: usize,
    /// Size of the exhaustive fault space.
    pub population: usize,
    /// Per-class interval estimates from the sample.
    pub estimates: Vec<ClassEstimate>,
    /// Exhaustive (ground-truth) summary.
    pub exhaustive: GradingSummary,
}

/// Grades a seeded sample and compares with the campaign's exhaustive
/// result.
///
/// # Panics
///
/// Panics if `sample_size` is zero.
#[must_use]
pub fn sampling_for(
    circuit: &Netlist,
    tb: &Testbench,
    campaign: &AutonomousCampaign,
    sample_size: usize,
    seed: u64,
) -> SamplingStudy {
    assert!(sample_size > 0);
    let grader = Grader::new(circuit, tb);
    let sample = FaultList::sampled(circuit.num_ffs(), tb.num_cycles(), sample_size, seed);
    let outcomes = grader.run_parallel(sample.as_slice());
    let summary = GradingSummary::from_outcomes(&outcomes);
    SamplingStudy {
        sample_size: sample.len(),
        population: campaign.faults().len(),
        estimates: estimate_classes(&summary),
        exhaustive: campaign.summary().clone(),
    }
}

impl SamplingStudy {
    /// Number of classes whose exhaustive percentage falls inside the
    /// sampled 95 % interval.
    #[must_use]
    pub fn classes_covered(&self) -> usize {
        self.estimates
            .iter()
            .filter(|e| e.covers(self.exhaustive.percent(e.class)))
            .count()
    }

    /// Renders the study.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            ("class", Align::Left),
            ("sampled % [95% CI]", Align::Right),
            ("exhaustive %", Align::Right),
            ("covered", Align::Left),
        ]);
        for e in &self.estimates {
            let truth = self.exhaustive.percent(e.class);
            t.row(vec![
                e.class.label().to_owned(),
                format!("{} [{}, {}]", fixed(e.percent, 1), fixed(e.low, 1), fixed(e.high, 1)),
                fixed(truth, 1),
                if e.covers(truth) { "yes" } else { "NO" }.into(),
            ]);
        }
        format!(
            "Fault sampling: {} of {} faults (Wilson 95% intervals vs exhaustive)\n{}",
            self.sample_size,
            self.population,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use seugrade_circuits::generators;

    use super::*;

    #[test]
    fn sampled_intervals_cover_exhaustive_truth() {
        let circuit = generators::random_sequential(
            &generators::RandomCircuitConfig {
                num_ffs: 12,
                num_gates: 80,
                observability_num: 3,
                ..Default::default()
            },
            5,
        );
        let tb = Testbench::random(circuit.num_inputs(), 60, 5);
        let campaign = AutonomousCampaign::new(&circuit, &tb);
        let study = sampling_for(&circuit, &tb, &campaign, 250, 17);
        assert_eq!(study.population, 12 * 60);
        assert_eq!(study.sample_size, 250);
        // With 95 % intervals over 3 classes, all three should cover on
        // this fixed seed (verified once; deterministic thereafter).
        assert_eq!(study.classes_covered(), 3, "{}", study.render());
        assert!(study.render().contains("Wilson"));
    }
}
