//! Reproduction drivers for every table and figure of the paper.
//!
//! | id | paper artifact | function |
//! |----|----------------|----------|
//! | T1 | Table 1 (synthesis results) | [`table1`] / [`table1_for`] |
//! | T2 | Table 2 (time results) | [`table2_for`] |
//! | F1 | Figure 1 (time-mux instrument) | [`figure1`] |
//! | C1 | §III classification percentages | [`classification_for`] |
//! | S1 | §III speed comparison | [`speed_for`] |
//! | X1 | §III crossover claim | [`crossover_for`] |
//! | A1 | ablation study (extension) | [`ablations_for`] |
//! | A2 | statistical sampling (extension) | [`sampling_for`] |
//!
//! Each driver returns a structured result with a `render()` method that
//! prints the measured numbers side by side with the paper's published
//! values (from [`paper`](crate::paper)); the `repro` binary in
//! `seugrade-bench` is a thin CLI over these functions.

mod ablations;
mod classification;
mod crossover;
mod figure1;
mod sampling_exp;
mod speed;
mod table1;
mod table2;

pub use ablations::{ablations_for, AblationRow, Ablations};
pub use classification::{classification_for, Classification};
pub use crossover::{crossover_for, viper_crossover_cycles, Crossover, CrossoverPoint};
pub use figure1::{figure1, Figure1};
pub use sampling_exp::{sampling_for, SamplingStudy};
pub use speed::{speed_for, SpeedComparison, SpeedRow};
pub use table1::{table1, table1_for, Table1, Table1Row};
pub use table2::{table2_for, Table2, Table2Row};

use seugrade_circuits::{stimuli, viper};
use seugrade_emulation::campaign::AutonomousCampaign;

/// Builds the paper's reference campaign: the Viper (b14-like) processor,
/// 160 instruction vectors, the exhaustive 34,400-fault list.
///
/// This grades every fault through the sharded `seugrade-engine`
/// runtime (bit-identical to the serial oracle at any thread count),
/// which takes a couple of hundred milliseconds in release builds.
#[must_use]
pub fn paper_campaign() -> AutonomousCampaign {
    let circuit = viper::viper();
    let tb = stimuli::paper_testbench();
    AutonomousCampaign::new(&circuit, &tb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_campaign_dimensions() {
        let c = paper_campaign();
        assert_eq!(c.faults().len(), crate::paper::B14_FAULTS);
        assert_eq!(c.num_ffs(), crate::paper::B14_FFS);
        assert_eq!(c.num_cycles(), crate::paper::B14_CYCLES);
    }
}
