//! Experiment T1 — Table 1, synthesis results.

use seugrade_circuits::{stimuli, viper};
use seugrade_emulation::campaign::Technique;
use seugrade_emulation::controller_netlist::{controller_netlist, ControllerParams};
use seugrade_emulation::instrument::{mask_scan, state_scan, time_mux};
use seugrade_emulation::ram::{RamParams, RamPlan};
use seugrade_netlist::Netlist;
use seugrade_sim::Testbench;
use seugrade_techmap::{map_luts, MapperConfig};

use crate::paper;
use crate::tables::{fixed, pct, Align, TextTable};

/// One measured Table 1 row.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Row label (`b14 original`, technique names).
    pub name: String,
    /// Board RAM in kbit (`None` for the original circuit).
    pub board_kbits: Option<f64>,
    /// FPGA RAM in kbit.
    pub fpga_kbits: Option<f64>,
    /// Modified-circuit LUTs.
    pub luts: usize,
    /// LUT overhead vs original, percent.
    pub lut_overhead_pct: Option<f64>,
    /// Modified-circuit flip-flops.
    pub ffs: usize,
    /// FF overhead vs original, percent.
    pub ff_overhead_pct: Option<f64>,
    /// Complete emulator system LUTs (modified circuit + controller).
    pub system_luts: Option<usize>,
    /// Complete emulator system flip-flops.
    pub system_ffs: Option<usize>,
}

/// Measured Table 1.
#[derive(Clone, Debug)]
pub struct Table1 {
    /// Rows: original circuit first, then one per technique.
    pub rows: Vec<Table1Row>,
}

/// Regenerates Table 1 for the paper's configuration (Viper, 160
/// vectors).
#[must_use]
pub fn table1() -> Table1 {
    table1_for(&viper::viper(), &stimuli::paper_testbench())
}

/// Regenerates Table 1 for an arbitrary circuit and test bench: maps the
/// original, the three instrumented versions and the per-technique
/// controllers onto 4-input LUTs, and plans the campaign RAM.
#[must_use]
pub fn table1_for(circuit: &Netlist, tb: &Testbench) -> Table1 {
    let config = MapperConfig::virtex_e();
    let base_map = map_luts(circuit, &config);
    let base_luts = base_map.num_luts();
    let base_ffs = circuit.num_ffs();

    let ram_params = RamParams {
        num_inputs: circuit.num_inputs(),
        num_outputs: circuit.num_outputs(),
        num_ffs: circuit.num_ffs(),
        num_cycles: tb.num_cycles(),
        num_faults: circuit.num_ffs() * tb.num_cycles(),
    };
    let ctrl_params = ControllerParams {
        num_inputs: circuit.num_inputs(),
        num_outputs: circuit.num_outputs(),
        num_ffs: circuit.num_ffs(),
        num_cycles: tb.num_cycles(),
    };

    let mut rows = vec![Table1Row {
        name: format!("{} original", circuit.name()),
        board_kbits: None,
        fpga_kbits: None,
        luts: base_luts,
        lut_overhead_pct: None,
        ffs: base_ffs,
        ff_overhead_pct: None,
        system_luts: None,
        system_ffs: None,
    }];

    for technique in Technique::ALL {
        let inst = match technique {
            Technique::MaskScan => mask_scan::instrument(circuit),
            Technique::StateScan => state_scan::instrument(circuit),
            Technique::TimeMux => time_mux::instrument(circuit),
        };
        let modified = inst.netlist();
        let mod_map = map_luts(modified, &config);
        let ctrl = controller_netlist(technique, &ctrl_params);
        let ctrl_map = map_luts(&ctrl, &config);
        let ram = RamPlan::plan(technique, &ram_params);

        let luts = mod_map.num_luts();
        let ffs = modified.num_ffs();
        rows.push(Table1Row {
            name: technique.label().to_owned(),
            board_kbits: Some(ram.board_kbits()),
            fpga_kbits: Some(ram.fpga_kbits()),
            luts,
            lut_overhead_pct: Some(overhead(luts, base_luts)),
            ffs,
            ff_overhead_pct: Some(overhead(ffs, base_ffs)),
            system_luts: Some(luts + ctrl_map.num_luts()),
            system_ffs: Some(ffs + ctrl.num_ffs()),
        });
    }
    Table1 { rows }
}

fn overhead(value: usize, base: usize) -> f64 {
    (value as f64 - base as f64) * 100.0 / base as f64
}

impl Table1 {
    /// Renders the measured table with the paper's published values in
    /// adjacent columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            ("circuit", Align::Left),
            ("RAM board/FPGA kbit", Align::Right),
            ("LUTs", Align::Right),
            ("LUT ovh", Align::Right),
            ("FFs", Align::Right),
            ("FF ovh", Align::Right),
            ("sys LUTs", Align::Right),
            ("sys FFs", Align::Right),
            ("paper LUTs", Align::Right),
            ("paper FFs", Align::Right),
        ]);
        for (row, paper_row) in self.rows.iter().zip(paper::TABLE1.iter()) {
            t.row(vec![
                row.name.clone(),
                match (row.board_kbits, row.fpga_kbits) {
                    (Some(b), Some(f)) => format!("{} / {}", fixed(b, 1), fixed(f, 1)),
                    _ => "-".into(),
                },
                row.luts.to_string(),
                pct(row.lut_overhead_pct),
                row.ffs.to_string(),
                pct(row.ff_overhead_pct),
                row.system_luts.map_or("-".into(), |v| v.to_string()),
                row.system_ffs.map_or("-".into(), |v| v.to_string()),
                paper_row.modified_luts.to_string(),
                paper_row.modified_ffs.to_string(),
            ]);
        }
        format!("Table 1. Synthesis results (measured vs paper)\n{}", t.render())
    }

    /// CSV form of the measured values.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut t = TextTable::new(vec![
            ("circuit", Align::Left),
            ("board_kbits", Align::Right),
            ("fpga_kbits", Align::Right),
            ("luts", Align::Right),
            ("lut_overhead_pct", Align::Right),
            ("ffs", Align::Right),
            ("ff_overhead_pct", Align::Right),
            ("system_luts", Align::Right),
            ("system_ffs", Align::Right),
        ]);
        for row in &self.rows {
            t.row(vec![
                row.name.clone(),
                row.board_kbits.map_or(String::new(), |v| fixed(v, 3)),
                row.fpga_kbits.map_or(String::new(), |v| fixed(v, 3)),
                row.luts.to_string(),
                row.lut_overhead_pct.map_or(String::new(), |v| fixed(v, 1)),
                row.ffs.to_string(),
                row.ff_overhead_pct.map_or(String::new(), |v| fixed(v, 1)),
                row.system_luts.map_or(String::new(), |v| v.to_string()),
                row.system_ffs.map_or(String::new(), |v| v.to_string()),
            ]);
        }
        t.to_csv()
    }
}

#[cfg(test)]
mod tests {
    use seugrade_circuits::generators;

    use super::*;

    #[test]
    fn small_circuit_table1_shape() {
        let circuit = generators::lfsr(8, &[7, 5, 4, 3]);
        let tb = Testbench::constant_low(0, 16);
        let t = table1_for(&circuit, &tb);
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.rows[0].ffs, 8);
        // FF overheads: mask/state 2x (100 %), time-mux 4x (300 %).
        assert_eq!(t.rows[1].ffs, 16);
        assert!((t.rows[1].ff_overhead_pct.unwrap() - 100.0).abs() < 1e-9);
        assert_eq!(t.rows[3].ffs, 32);
        assert!((t.rows[3].ff_overhead_pct.unwrap() - 300.0).abs() < 1e-9);
        // Time-mux is the LUT-heaviest modification, as in the paper.
        assert!(t.rows[3].luts > t.rows[1].luts);
        assert!(t.rows[3].luts > t.rows[2].luts);
        // Systems add controller resources.
        for r in &t.rows[1..] {
            assert!(r.system_luts.unwrap() > r.luts);
            assert!(r.system_ffs.unwrap() > r.ffs);
        }
        // State-scan board RAM dominates everything else (n_ff + 2 bits
        // per fault vs mask-scan's single result bit).
        assert!(t.rows[2].board_kbits.unwrap() >= 5.0 * t.rows[1].board_kbits.unwrap());
        let text = t.render();
        assert!(text.contains("Table 1"));
        let csv = t.to_csv();
        assert!(csv.lines().count() == 5);
    }
}
