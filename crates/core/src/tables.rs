//! Plain-text table rendering and CSV export for the reproduction
//! harness.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple monospace table builder.
///
/// # Example
///
/// ```
/// use seugrade::tables::{Align, TextTable};
///
/// let mut t = TextTable::new(vec![
///     ("technique", Align::Left),
///     ("us/fault", Align::Right),
/// ]);
/// t.row(vec!["Time Multiplex.".into(), "0.58".into()]);
/// let text = t.render();
/// assert!(text.contains("Time Multiplex."));
/// assert!(text.lines().count() >= 3);
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    headers: Vec<(String, Align)>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given headers.
    #[must_use]
    pub fn new(headers: Vec<(&str, Align)>) -> Self {
        TextTable {
            headers: headers.into_iter().map(|(h, a)| (h.to_owned(), a)).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "table row width");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders with a header rule, columns padded to content width.
    #[must_use]
    pub fn render(&self) -> String {
        let n = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|(h, _)| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, (h, _)) in self.headers.iter().enumerate() {
            let sep = if i + 1 == n { "\n" } else { "  " };
            write!(out, "{:<width$}{sep}", h, width = widths[i]).unwrap();
        }
        for (i, w) in widths.iter().enumerate() {
            let sep = if i + 1 == n { "\n" } else { "  " };
            write!(out, "{}{sep}", "-".repeat(*w)).unwrap();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let sep = if i + 1 == n { "\n" } else { "  " };
                match self.headers[i].1 {
                    Align::Left => write!(out, "{:<width$}{sep}", cell, width = widths[i]),
                    Align::Right => write!(out, "{:>width$}{sep}", cell, width = widths[i]),
                }
                .unwrap();
            }
        }
        out
    }

    /// Renders as RFC-4180-ish CSV (quotes only where needed).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        let headers: Vec<String> = self.headers.iter().map(|(h, _)| escape(h)).collect();
        writeln!(out, "{}", headers.join(",")).unwrap();
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| escape(c)).collect();
            writeln!(out, "{}", cells.join(",")).unwrap();
        }
        out
    }
}

/// Formats an optional percentage as the paper does: `(41%)` or blank.
#[must_use]
pub fn pct(value: Option<f64>) -> String {
    value.map_or(String::from("-"), |v| format!("({v:.0}%)"))
}

/// Formats a float with `digits` decimal places.
#[must_use]
pub fn fixed(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TextTable {
        let mut t = TextTable::new(vec![("name", Align::Left), ("value", Align::Right)]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22.5".into()]);
        t
    }

    #[test]
    fn render_alignment() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("-----"));
        assert!(lines[2].contains("alpha"));
        // right-aligned number column
        assert!(lines[2].ends_with("1"));
        assert!(lines[3].ends_with("22.5"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = TextTable::new(vec![("a", Align::Left), ("b", Align::Left)]);
        t.row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = sample();
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn helpers() {
        assert_eq!(pct(Some(41.0)), "(41%)");
        assert_eq!(pct(None), "-");
        assert_eq!(fixed(1.2345, 2), "1.23");
    }
}
