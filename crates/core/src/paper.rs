//! Published numbers from the DATE'05 paper, used by the reproduction
//! harness to print paper-vs-measured comparisons.
//!
//! Sources: Table 1 (synthesis results), Table 2 (time results) and the
//! §III prose of López-Ongil et al., DATE 2005.

/// One Table 1 row as printed in the paper.
#[derive(Clone, Copy, Debug)]
pub struct PaperTable1Row {
    /// Row label.
    pub name: &'static str,
    /// Board RAM, kbit (`None` where the paper prints “-”).
    pub board_ram_kbits: Option<f64>,
    /// FPGA RAM, kbit.
    pub fpga_ram_kbits: Option<f64>,
    /// Modified-circuit LUTs.
    pub modified_luts: usize,
    /// Modified-circuit LUT overhead vs original, percent.
    pub modified_lut_overhead_pct: Option<f64>,
    /// Modified-circuit flip-flops.
    pub modified_ffs: usize,
    /// Modified-circuit FF overhead vs original, percent.
    pub modified_ff_overhead_pct: Option<f64>,
    /// Emulator-system LUTs.
    pub system_luts: Option<usize>,
    /// Emulator-system flip-flops.
    pub system_ffs: Option<usize>,
}

/// Table 1 of the paper (synthesis results for b14, Leonardo Spectrum
/// 2003, Virtex-E).
pub const TABLE1: [PaperTable1Row; 4] = [
    PaperTable1Row {
        name: "b14 original",
        board_ram_kbits: None,
        fpga_ram_kbits: None,
        modified_luts: 1_172,
        modified_lut_overhead_pct: None,
        modified_ffs: 215,
        modified_ff_overhead_pct: None,
        system_luts: None,
        system_ffs: None,
    },
    PaperTable1Row {
        name: "Mask Scan",
        board_ram_kbits: Some(33.0),
        fpga_ram_kbits: Some(13.4),
        modified_luts: 1_657,
        modified_lut_overhead_pct: Some(41.0),
        modified_ffs: 434,
        modified_ff_overhead_pct: Some(102.0),
        system_luts: Some(2_040),
        system_ffs: Some(670),
    },
    PaperTable1Row {
        name: "State Scan",
        board_ram_kbits: Some(7_289.0),
        fpga_ram_kbits: Some(13.4),
        modified_luts: 1_644,
        modified_lut_overhead_pct: Some(40.0),
        modified_ffs: 433,
        modified_ff_overhead_pct: Some(101.0),
        system_luts: Some(1_728),
        system_ffs: Some(518),
    },
    PaperTable1Row {
        name: "Time Multiplex.",
        board_ram_kbits: Some(67.0),
        fpga_ram_kbits: Some(5.3),
        modified_luts: 3_836,
        modified_lut_overhead_pct: Some(227.0),
        modified_ffs: 859,
        modified_ff_overhead_pct: Some(300.0),
        system_luts: Some(4_162),
        system_ffs: Some(1_032),
    },
];

/// One Table 2 row as printed in the paper.
#[derive(Clone, Copy, Debug)]
pub struct PaperTable2Row {
    /// Row label.
    pub name: &'static str,
    /// Emulation time in ms at 25 MHz.
    pub emulation_ms: f64,
    /// Average speed in µs/fault.
    pub us_per_fault: f64,
}

/// Table 2 of the paper (time results for b14, 34,400 faults, 25 MHz).
pub const TABLE2: [PaperTable2Row; 3] = [
    PaperTable2Row { name: "Mask Scan", emulation_ms: 141.11, us_per_fault: 4.1 },
    PaperTable2Row { name: "State Scan", emulation_ms: 386.40, us_per_fault: 11.2 },
    PaperTable2Row { name: "Time Multiplex.", emulation_ms: 19.95, us_per_fault: 0.58 },
];

/// §III: classification of the 34,400 b14 faults, percent.
pub const CLASSIFICATION_PCT: (f64, f64, f64) = (49.2, 4.4, 46.4);

/// §III: fault simulation baseline, µs/fault (2005 workstation).
pub const FAULT_SIM_US_PER_FAULT: f64 = 1_300.0;

/// §III: host-controlled emulation baseline \[2\], µs/fault.
pub const HOST_EMULATION_US_PER_FAULT: f64 = 100.0;

/// The b14 campaign dimensions.
pub const B14_INPUTS: usize = 32;
/// Outputs of b14.
pub const B14_OUTPUTS: usize = 54;
/// Flip-flops of b14.
pub const B14_FFS: usize = 215;
/// Test-bench vectors of the paper's experiment.
pub const B14_CYCLES: usize = 160;
/// Single faults graded in the paper (215 × 160).
pub const B14_FAULTS: usize = 34_400;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_count_is_cross_product() {
        assert_eq!(B14_FFS * B14_CYCLES, B14_FAULTS);
    }

    #[test]
    fn classification_sums_to_100() {
        let (f, l, s) = CLASSIFICATION_PCT;
        assert!((f + l + s - 100.0).abs() < 1e-9);
    }

    #[test]
    fn table2_speed_consistent_with_time() {
        // ms * 1000 / 34,400 faults ≈ printed µs/fault.
        for row in TABLE2 {
            let derived = row.emulation_ms * 1e3 / B14_FAULTS as f64;
            assert!(
                (derived - row.us_per_fault).abs() / row.us_per_fault < 0.02,
                "{}: {derived} vs {}",
                row.name,
                row.us_per_fault
            );
        }
    }
}
