//! K-feasible cut enumeration and LUT covering.

use seugrade_netlist::Netlist;

use crate::graph::{decompose, MapGraph, NodeId};

/// Mapper parameters.
#[derive(Clone, Debug)]
pub struct MapperConfig {
    /// LUT input count (K). Virtex-E uses 4.
    pub lut_inputs: usize,
    /// Cuts kept per node during enumeration (quality/runtime knob).
    pub max_cuts: usize,
}

impl MapperConfig {
    /// The paper's device: Xilinx Virtex-E (4-input LUTs).
    #[must_use]
    pub fn virtex_e() -> Self {
        MapperConfig { lut_inputs: 4, max_cuts: 8 }
    }
}

impl Default for MapperConfig {
    fn default() -> Self {
        Self::virtex_e()
    }
}

/// One mapped LUT: a root node and the (≤ K) leaf signals it reads.
#[derive(Clone, Debug)]
pub struct Lut {
    pub(crate) root: NodeId,
    pub(crate) leaves: Vec<NodeId>,
}

impl Lut {
    /// Number of inputs this LUT actually uses.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.leaves.len()
    }

    /// Index of the mapping-graph node this LUT computes (diagnostic).
    #[must_use]
    pub fn root_index(&self) -> usize {
        self.root as usize
    }
}

/// Result of LUT covering.
#[derive(Clone, Debug)]
pub struct Mapping {
    luts: Vec<Lut>,
    depth: u32,
}

impl Mapping {
    /// Number of LUTs in the cover (Table 1's "LUTs" column).
    #[must_use]
    pub fn num_luts(&self) -> usize {
        self.luts.len()
    }

    /// LUT-level depth of the mapped network.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The individual LUTs.
    #[must_use]
    pub fn luts(&self) -> &[Lut] {
        &self.luts
    }

    /// Histogram of LUT input usage: `hist[i]` = LUTs with `i` inputs.
    #[must_use]
    pub fn input_histogram(&self, k: usize) -> Vec<usize> {
        let mut hist = vec![0usize; k + 1];
        for lut in &self.luts {
            hist[lut.num_inputs().min(k)] += 1;
        }
        hist
    }
}

/// A cut: sorted leaf set (≤ K nodes) plus its mapped depth.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Cut {
    leaves: Vec<NodeId>,
    depth: u32,
}

/// Maps a netlist onto K-input LUTs.
///
/// FlowMap-flavoured heuristic: per node, enumerate up to
/// `config.max_cuts` K-feasible cuts (children's cut sets merged, plus
/// the trivial cut), keep the depth-best; cover from the roots downward
/// selecting each root's best cut and recursing into its leaves.
///
/// # Panics
///
/// Panics if `config.lut_inputs < 2` (no useful LUT has fewer inputs).
#[must_use]
pub fn map_luts(netlist: &Netlist, config: &MapperConfig) -> Mapping {
    assert!(config.lut_inputs >= 2, "LUTs need at least 2 inputs");
    let graph = decompose(netlist);
    map_graph(&graph, config)
}

/// Maps a pre-decomposed graph (exposed for reuse by resource reports).
#[must_use]
pub(crate) fn map_graph(graph: &MapGraph, config: &MapperConfig) -> Mapping {
    let k = config.lut_inputs;
    let n = graph.nodes.len();

    // Per-node best cut (for covering) and per-node arrival depth.
    let mut best: Vec<Option<Cut>> = vec![None; n];
    let mut arrival: Vec<u32> = vec![0; n];
    // Cut sets per node, bounded by max_cuts.
    let mut cut_sets: Vec<Vec<Cut>> = vec![Vec::new(); n];

    // Nodes are created in topological order by `decompose` (sources
    // first, then logic following levelization), so a forward sweep works.
    for id in 0..n as NodeId {
        let node = &graph.nodes[id as usize];
        if node.is_source {
            cut_sets[id as usize] = vec![Cut { leaves: vec![id], depth: 0 }];
            continue;
        }
        let mut cuts: Vec<Cut> = Vec::new();
        // Merge children's cut sets (cross product, bounded).
        let child_sets: Vec<&[Cut]> = node
            .inputs
            .iter()
            .map(|&c| cut_sets[c as usize].as_slice())
            .collect();
        merge_cuts(&child_sets, k, &mut cuts);
        // Depth of each merged cut = 1 + max leaf arrival.
        for cut in &mut cuts {
            let d = cut
                .leaves
                .iter()
                .map(|&l| arrival[l as usize])
                .max()
                .unwrap_or(0);
            cut.depth = d + 1;
        }
        cuts.sort_by(|a, b| {
            a.depth
                .cmp(&b.depth)
                .then(a.leaves.len().cmp(&b.leaves.len()))
        });
        cuts.dedup_by(|a, b| a.leaves == b.leaves);
        cuts.truncate(config.max_cuts);
        let chosen = cuts.first().cloned().unwrap_or(Cut {
            leaves: node.inputs.clone(),
            depth: 1 + node
                .inputs
                .iter()
                .map(|&l| arrival[l as usize])
                .max()
                .unwrap_or(0),
        });
        arrival[id as usize] = chosen.depth;
        best[id as usize] = Some(chosen);
        // The trivial cut lets parents treat this node as a leaf.
        cuts.push(Cut { leaves: vec![id], depth: arrival[id as usize] });
        cut_sets[id as usize] = cuts;
    }

    // Covering phase.
    let mut selected: Vec<Lut> = Vec::new();
    let mut visited = vec![false; n];
    let mut stack: Vec<NodeId> = graph.roots.clone();
    let mut max_depth = 0;
    while let Some(root) = stack.pop() {
        if visited[root as usize] || graph.nodes[root as usize].is_source {
            continue;
        }
        visited[root as usize] = true;
        let cut = best[root as usize]
            .clone()
            .expect("logic node has a best cut");
        max_depth = max_depth.max(cut.depth);
        for &leaf in &cut.leaves {
            if !graph.nodes[leaf as usize].is_source {
                stack.push(leaf);
            }
        }
        selected.push(Lut { root, leaves: cut.leaves });
    }

    Mapping { luts: selected, depth: max_depth }
}

/// Merges child cut sets into K-feasible cuts of the parent.
fn merge_cuts(child_sets: &[&[Cut]], k: usize, out: &mut Vec<Cut>) {
    fn rec(
        child_sets: &[&[Cut]],
        k: usize,
        idx: usize,
        acc: &mut Vec<NodeId>,
        out: &mut Vec<Cut>,
        budget: &mut usize,
    ) {
        if *budget == 0 {
            return;
        }
        if idx == child_sets.len() {
            let mut leaves = acc.clone();
            leaves.sort_unstable();
            leaves.dedup();
            if leaves.len() <= k {
                out.push(Cut { leaves, depth: 0 });
                *budget -= 1;
            }
            return;
        }
        for cut in child_sets[idx] {
            // Quick bound: merged size can only grow.
            let mut merged = acc.clone();
            merged.extend_from_slice(&cut.leaves);
            merged.sort_unstable();
            merged.dedup();
            if merged.len() > k {
                continue;
            }
            let mut next = merged;
            std::mem::swap(acc, &mut next);
            rec(child_sets, k, idx + 1, acc, out, budget);
            std::mem::swap(acc, &mut next);
        }
    }
    let mut acc = Vec::new();
    // Explore a bounded number of combinations; the sets are already
    // quality-ordered so early combinations are the good ones.
    let mut budget = 64usize;
    rec(child_sets, k, 0, &mut acc, out, &mut budget);
}

#[cfg(test)]
mod tests {
    use seugrade_netlist::{GateKind, NetlistBuilder};
    use seugrade_rtl::RtlBuilder;

    use super::*;

    #[test]
    fn single_gate_is_one_lut() {
        let mut b = NetlistBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.and2(x, y);
        b.output("o", g);
        let n = b.finish().unwrap();
        let m = map_luts(&n, &MapperConfig::virtex_e());
        assert_eq!(m.num_luts(), 1);
        assert_eq!(m.depth(), 1);
    }

    #[test]
    fn chain_of_gates_packs_into_lut() {
        // f = ((a&b)|c)^d : 4 distinct inputs, fits one 4-LUT.
        let mut b = NetlistBuilder::new("pack");
        let a = b.input("a");
        let bb = b.input("b");
        let c = b.input("c");
        let d = b.input("d");
        let g1 = b.and2(a, bb);
        let g2 = b.or2(g1, c);
        let g3 = b.xor2(g2, d);
        b.output("o", g3);
        let n = b.finish().unwrap();
        let m = map_luts(&n, &MapperConfig::virtex_e());
        assert_eq!(m.num_luts(), 1, "three gates over 4 inputs = one 4-LUT");
        assert_eq!(m.depth(), 1);
    }

    #[test]
    fn five_input_function_needs_two_luts() {
        let mut b = NetlistBuilder::new("five");
        let ins: Vec<_> = (0..5).map(|i| b.input(format!("i{i}"))).collect();
        let g = b.gate(GateKind::Xor, &ins);
        b.output("o", g);
        let n = b.finish().unwrap();
        let m = map_luts(&n, &MapperConfig::virtex_e());
        assert_eq!(m.num_luts(), 2);
        assert_eq!(m.depth(), 2);
    }

    #[test]
    fn wide_xor_lut_count_scales_logarithmically_in_depth() {
        let mut b = NetlistBuilder::new("xor32");
        let ins: Vec<_> = (0..32).map(|i| b.input(format!("i{i}"))).collect();
        let g = b.gate(GateKind::Xor, &ins);
        b.output("o", g);
        let n = b.finish().unwrap();
        let m = map_luts(&n, &MapperConfig::virtex_e());
        // 32 inputs / 4-LUTs: ideal = 11 LUTs (8+2+1), depth 3.
        assert!(m.num_luts() <= 12, "got {}", m.num_luts());
        assert!(m.depth() <= 3, "depth {}", m.depth());
    }

    #[test]
    fn adder_mapping_is_reasonable() {
        // 8-bit ripple adder: classic result is ~2 LUTs/bit or less.
        let mut r = RtlBuilder::new("add8");
        let a = r.input_word("a", 8);
        let b = r.input_word("b", 8);
        let (s, c) = r.add(&a, &b);
        r.output_word("s", &s);
        r.output_bit("c", c);
        let n = r.finish().unwrap();
        let m = map_luts(&n, &MapperConfig::virtex_e());
        assert!(
            (8..=24).contains(&m.num_luts()),
            "8-bit adder mapped to {} LUTs",
            m.num_luts()
        );
    }

    #[test]
    fn registered_logic_roots_at_ff_inputs() {
        let mut b = NetlistBuilder::new("reg");
        let a = b.input("a");
        let q = b.dff(false);
        let g = b.xor2(a, q);
        b.connect_dff(q, g).unwrap();
        b.output("q", q);
        let n = b.finish().unwrap();
        let m = map_luts(&n, &MapperConfig::virtex_e());
        assert_eq!(m.num_luts(), 1, "one LUT feeding the flip-flop");
    }

    #[test]
    fn histogram_counts_inputs() {
        let mut b = NetlistBuilder::new("h");
        let x = b.input("x");
        let y = b.input("y");
        let g1 = b.and2(x, y);
        let g2 = b.not(x);
        b.output("a", g1);
        b.output("b", g2);
        let n = b.finish().unwrap();
        let m = map_luts(&n, &MapperConfig::virtex_e());
        let hist = m.input_histogram(4);
        assert_eq!(hist[1], 1); // the NOT
        assert_eq!(hist[2], 1); // the AND
    }

    #[test]
    fn mapping_is_deterministic() {
        let n = seugrade_circuits::registry::build("b03s").unwrap();
        let a = map_luts(&n, &MapperConfig::virtex_e());
        let b = map_luts(&n, &MapperConfig::virtex_e());
        assert_eq!(a.num_luts(), b.num_luts());
        assert_eq!(a.depth(), b.depth());
    }
}
