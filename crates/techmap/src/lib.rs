//! K-input LUT technology mapping and FPGA resource estimation.
//!
//! The paper's Table 1 reports Leonardo Spectrum synthesis results
//! (4-input LUTs and flip-flops on a Xilinx Virtex-E 2000) for the
//! original b14, the three instrumented versions and the three complete
//! emulator systems. This crate reproduces that pipeline in software:
//!
//! 1. [`decompose`] — rewrite the gate network into a bounded-fanin
//!    (≤ 2-input gates, 3-input muxes) mapping graph;
//! 2. [`map_luts`] — enumerate K-feasible cuts per node (FlowMap-style,
//!    depth-optimal with area tie-break) and cover the graph with LUTs;
//! 3. [`ResourceReport`] — LUT/FF/BRAM tallies and overhead percentages
//!    against a baseline circuit, the exact shape of Table 1's rows.
//!
//! Absolute LUT counts from a 2026 Rust reimplementation will not equal
//! Leonardo Spectrum 2003's, but the *ratios* between instrumented and
//! original circuits — what Table 1 is about — carry over, because both
//! mappers see the same structural overhead.
//!
//! # Example
//!
//! ```
//! use seugrade_circuits::generators;
//! use seugrade_techmap::{map_luts, MapperConfig};
//!
//! let circuit = generators::counter(8);
//! let mapping = map_luts(&circuit, &MapperConfig::virtex_e());
//! assert!(mapping.num_luts() >= 4); // 8-bit increment needs LUTs
//! assert!(mapping.depth() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cuts;
mod graph;
mod report;

pub use cuts::{map_luts, Lut, MapperConfig, Mapping};
pub use graph::{decompose, MapGraph};
pub use report::{BramEstimate, ResourceReport};
