//! Bounded-fanin mapping graph.

use seugrade_netlist::{CellKind, GateKind, Netlist, SigId};

/// Node index inside a [`MapGraph`].
pub(crate) type NodeId = u32;

/// A node in the decomposed graph: either a *source* (primary input,
/// constant or flip-flop output — free for mapping) or a logic node with
/// at most 3 bounded-fanin operands (2 for gates, 3 for muxes).
#[derive(Clone, Debug)]
pub(crate) struct MapNode {
    pub inputs: Vec<NodeId>,
    pub is_source: bool,
}

/// The decomposition of a netlist into a bounded-fanin DAG.
///
/// Wide n-ary gates are split into balanced binary trees; every original
/// signal keeps a representative node, so mapping roots (primary outputs
/// and flip-flop data inputs) can be located after decomposition.
#[derive(Clone, Debug)]
pub struct MapGraph {
    pub(crate) nodes: Vec<MapNode>,
    /// Representative node for each original signal.
    pub(crate) rep: Vec<NodeId>,
    /// Mapping roots: nodes that must be implemented (primary outputs and
    /// flip-flop `d` inputs that are logic).
    pub(crate) roots: Vec<NodeId>,
}

impl MapGraph {
    /// Number of nodes (sources + logic) after decomposition.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of logic (non-source) nodes.
    #[must_use]
    pub fn num_logic_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| !n.is_source).count()
    }

    /// Index of the graph node representing an original signal
    /// (diagnostic aid for inspecting decompositions).
    #[must_use]
    pub fn representative(&self, sig: SigId) -> usize {
        self.rep[sig.index()] as usize
    }
}

/// Decomposes `netlist` into a bounded-fanin mapping graph.
///
/// Gates with more than two pins become balanced trees of 2-input nodes
/// (a 32-input XOR becomes 31 nodes in 5 levels); muxes stay 3-input;
/// `Buf` nodes collapse onto their operand (zero cost, like synthesis).
#[must_use]
pub fn decompose(netlist: &Netlist) -> MapGraph {
    let mut nodes: Vec<MapNode> = Vec::with_capacity(netlist.num_cells() * 2);
    let mut rep: Vec<NodeId> = vec![0; netlist.num_cells()];

    let order = netlist
        .levelize()
        .expect("mapping requires an acyclic netlist");

    // Sources first: inputs, constants, flip-flops.
    for (id, cell) in netlist.iter_cells() {
        match cell.kind() {
            CellKind::Input | CellKind::Const(_) | CellKind::Dff { .. } => {
                rep[id.index()] = nodes.len() as NodeId;
                nodes.push(MapNode { inputs: Vec::new(), is_source: true });
            }
            CellKind::Gate(_) => {}
        }
    }

    // Gates in topological order; operands' representatives exist by the
    // time each gate is visited.
    for &id in order.order() {
        let cell = netlist.cell(id);
        let CellKind::Gate(kind) = cell.kind() else { unreachable!() };
        let operands: Vec<NodeId> = cell.pins().iter().map(|p| rep[p.index()]).collect();
        let node = match kind {
            GateKind::Buf => {
                // Zero-cost alias.
                rep[id.index()] = operands[0];
                continue;
            }
            GateKind::Not => push(&mut nodes, vec![operands[0]]),
            GateKind::Mux => push(&mut nodes, operands),
            _ => balanced_tree(&mut nodes, &operands),
        };
        rep[id.index()] = node;
    }

    // Roots: primary outputs + flip-flop data inputs, deduplicated, and
    // only when they are logic nodes (a source is free).
    let mut roots = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut add_root = |n: NodeId, nodes: &Vec<MapNode>| {
        if !nodes[n as usize].is_source && seen.insert(n) {
            roots.push(n);
        }
    };
    for (_, sig) in netlist.outputs() {
        add_root(rep[sig.index()], &nodes);
    }
    for &ff in netlist.ffs() {
        let d: SigId = netlist.cell(ff).pins()[0];
        add_root(rep[d.index()], &nodes);
    }

    MapGraph { nodes, rep, roots }
}

fn push(nodes: &mut Vec<MapNode>, inputs: Vec<NodeId>) -> NodeId {
    let id = nodes.len() as NodeId;
    nodes.push(MapNode { inputs, is_source: false });
    id
}

/// Builds a balanced binary tree over `operands`, returning the root.
fn balanced_tree(nodes: &mut Vec<MapNode>, operands: &[NodeId]) -> NodeId {
    debug_assert!(!operands.is_empty());
    let mut layer: Vec<NodeId> = operands.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(push(nodes, vec![pair[0], pair[1]]));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    layer[0]
}

#[cfg(test)]
mod tests {
    use seugrade_netlist::{GateKind, NetlistBuilder};

    use super::*;

    #[test]
    fn wide_gate_becomes_balanced_tree() {
        let mut b = NetlistBuilder::new("wide");
        let ins: Vec<_> = (0..8).map(|i| b.input(format!("i{i}"))).collect();
        let g = b.gate(GateKind::Xor, &ins);
        b.output("y", g);
        let n = b.finish().unwrap();
        let graph = decompose(&n);
        // 8 sources + 7 tree nodes.
        assert_eq!(graph.num_nodes(), 15);
        assert_eq!(graph.num_logic_nodes(), 7);
        assert_eq!(graph.roots.len(), 1);
    }

    #[test]
    fn buf_is_free() {
        let mut b = NetlistBuilder::new("buf");
        let a = b.input("a");
        let buf = b.buf(a);
        b.output("y", buf);
        let n = b.finish().unwrap();
        let graph = decompose(&n);
        assert_eq!(graph.num_logic_nodes(), 0);
        assert!(graph.roots.is_empty(), "output is a source alias");
    }

    #[test]
    fn ff_d_inputs_are_roots() {
        let mut b = NetlistBuilder::new("ffroot");
        let q = b.dff(false);
        let inv = b.not(q);
        b.connect_dff(q, inv).unwrap();
        b.output("q", q);
        let n = b.finish().unwrap();
        let graph = decompose(&n);
        assert_eq!(graph.roots.len(), 1, "the NOT feeding the ff");
    }

    #[test]
    fn shared_root_deduplicated() {
        let mut b = NetlistBuilder::new("shared");
        let a = b.input("a");
        let g = b.not(a);
        b.output("y1", g);
        b.output("y2", g);
        let n = b.finish().unwrap();
        let graph = decompose(&n);
        assert_eq!(graph.roots.len(), 1);
    }

    #[test]
    fn mux_keeps_three_inputs() {
        let mut b = NetlistBuilder::new("m");
        let s = b.input("s");
        let x = b.input("x");
        let y = b.input("y");
        let m = b.mux(s, x, y);
        b.output("o", m);
        let n = b.finish().unwrap();
        let graph = decompose(&n);
        assert_eq!(graph.num_logic_nodes(), 1);
        let logic = graph.nodes.iter().find(|n| !n.is_source).unwrap();
        assert_eq!(logic.inputs.len(), 3);
    }
}
