//! Resource accounting (Table 1's row format).

use std::fmt;

use seugrade_netlist::Netlist;

use crate::{map_luts, MapperConfig};

/// Block-RAM sizing on the target device.
///
/// The Virtex-E family provides 4,096-bit block select RAMs; the Celoxica
/// RC1000 board used in the paper adds 8 MB of external SRAM. Campaign
/// memory regions are placed on-FPGA when they are read every cycle
/// (stimuli, golden outputs) and on the board RAM otherwise (bulk state
/// vectors, result logs) — exactly the split visible in Table 1's
/// "Board / FPGA RAM" column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BramEstimate {
    /// Bits required in on-FPGA block RAM.
    pub fpga_bits: u64,
    /// Bits required in on-board (external) RAM.
    pub board_bits: u64,
}

impl BramEstimate {
    /// Virtex-E block select RAM capacity in bits.
    pub const BLOCK_BITS: u64 = 4096;

    /// No memory at all.
    #[must_use]
    pub fn zero() -> Self {
        BramEstimate { fpga_bits: 0, board_bits: 0 }
    }

    /// Number of 4-kbit blocks needed on the FPGA.
    #[must_use]
    pub fn fpga_blocks(&self) -> u64 {
        self.fpga_bits.div_ceil(Self::BLOCK_BITS)
    }

    /// Kilobits (1 kbit = 1024 bits) on the FPGA, as printed in Table 1.
    #[must_use]
    pub fn fpga_kbits(&self) -> f64 {
        self.fpga_bits as f64 / 1024.0
    }

    /// Kilobits on the board RAM, as printed in Table 1.
    #[must_use]
    pub fn board_kbits(&self) -> f64 {
        self.board_bits as f64 / 1024.0
    }
}

/// LUT/FF/RAM usage of one circuit, with optional overhead percentages
/// against a baseline — one row of the paper's Table 1.
#[derive(Clone, Debug)]
pub struct ResourceReport {
    name: String,
    luts: usize,
    ffs: usize,
    depth: u32,
    ram: BramEstimate,
}

impl ResourceReport {
    /// Maps `netlist` and tallies resources. `ram` carries the campaign
    /// memory attributed to this circuit (zero for bare circuits).
    #[must_use]
    pub fn measure(netlist: &Netlist, config: &MapperConfig, ram: BramEstimate) -> Self {
        let mapping = map_luts(netlist, config);
        ResourceReport {
            name: netlist.name().to_owned(),
            luts: mapping.num_luts(),
            ffs: netlist.num_ffs(),
            depth: mapping.depth(),
            ram,
        }
    }

    /// Builds a report from precomputed numbers (used for controller
    /// estimates assembled from parts).
    #[must_use]
    pub fn from_parts(name: impl Into<String>, luts: usize, ffs: usize, depth: u32, ram: BramEstimate) -> Self {
        ResourceReport { name: name.into(), luts, ffs, depth, ram }
    }

    /// Circuit name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Mapped LUT count.
    #[must_use]
    pub fn luts(&self) -> usize {
        self.luts
    }

    /// Flip-flop count.
    #[must_use]
    pub fn ffs(&self) -> usize {
        self.ffs
    }

    /// LUT-level depth.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Campaign RAM attributed to this circuit.
    #[must_use]
    pub fn ram(&self) -> BramEstimate {
        self.ram
    }

    /// Returns a report representing `self + other` (used to combine a
    /// modified circuit with its emulation controller).
    #[must_use]
    pub fn combined(&self, other: &ResourceReport, name: impl Into<String>) -> ResourceReport {
        ResourceReport {
            name: name.into(),
            luts: self.luts + other.luts,
            ffs: self.ffs + other.ffs,
            depth: self.depth.max(other.depth),
            ram: BramEstimate {
                fpga_bits: self.ram.fpga_bits + other.ram.fpga_bits,
                board_bits: self.ram.board_bits + other.ram.board_bits,
            },
        }
    }

    /// LUT overhead versus a baseline, in percent (Table 1's
    /// parenthesised numbers).
    #[must_use]
    pub fn lut_overhead_pct(&self, base: &ResourceReport) -> f64 {
        overhead_pct(self.luts, base.luts)
    }

    /// Flip-flop overhead versus a baseline, in percent.
    #[must_use]
    pub fn ff_overhead_pct(&self, base: &ResourceReport) -> f64 {
        overhead_pct(self.ffs, base.ffs)
    }
}

fn overhead_pct(value: usize, base: usize) -> f64 {
    if base == 0 {
        return 0.0;
    }
    (value as f64 - base as f64) * 100.0 / base as f64
}

impl fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} LUTs, {} FFs, depth {}, RAM {:.1}/{:.1} kbit (board/FPGA)",
            self.name,
            self.luts,
            self.ffs,
            self.depth,
            self.ram.board_kbits(),
            self.ram.fpga_kbits()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bram_blocks_round_up() {
        let b = BramEstimate { fpga_bits: 4097, board_bits: 0 };
        assert_eq!(b.fpga_blocks(), 2);
        assert_eq!(BramEstimate::zero().fpga_blocks(), 0);
    }

    #[test]
    fn kbit_conversion_matches_paper_convention() {
        // 13,760 stimulus+golden bits for b14/160 print as 13.4 kbit.
        let b = BramEstimate { fpga_bits: 13_760, board_bits: 34_400 };
        assert!((b.fpga_kbits() - 13.4375).abs() < 1e-9);
        assert!((b.board_kbits() - 33.59375).abs() < 1e-9);
    }

    #[test]
    fn overhead_percentages() {
        let base = ResourceReport::from_parts("base", 1000, 200, 10, BramEstimate::zero());
        let big = ResourceReport::from_parts("big", 1410, 404, 12, BramEstimate::zero());
        assert!((big.lut_overhead_pct(&base) - 41.0).abs() < 1e-9);
        assert!((big.ff_overhead_pct(&base) - 102.0).abs() < 1e-9);
    }

    #[test]
    fn combine_adds_resources() {
        let a = ResourceReport::from_parts("a", 100, 10, 5, BramEstimate { fpga_bits: 100, board_bits: 0 });
        let b = ResourceReport::from_parts("b", 50, 20, 7, BramEstimate { fpga_bits: 28, board_bits: 64 });
        let c = a.combined(&b, "a+b");
        assert_eq!(c.luts(), 150);
        assert_eq!(c.ffs(), 30);
        assert_eq!(c.depth(), 7);
        assert_eq!(c.ram().fpga_bits, 128);
        assert_eq!(c.ram().board_bits, 64);
    }

    #[test]
    fn measure_counts_circuit() {
        let n = seugrade_circuits::generators::counter(8);
        let r = ResourceReport::measure(&n, &MapperConfig::virtex_e(), BramEstimate::zero());
        assert_eq!(r.ffs(), 8);
        assert!(r.luts() > 0);
        assert!(r.to_string().contains("LUTs"));
    }

    #[test]
    fn zero_base_overhead_is_zero() {
        let a = ResourceReport::from_parts("a", 5, 5, 1, BramEstimate::zero());
        let zero = ResourceReport::from_parts("z", 0, 0, 0, BramEstimate::zero());
        assert_eq!(a.lut_overhead_pct(&zero), 0.0);
    }
}
