// s208a — Verilog twin of s208a.bench (10 inputs, 1 output, 8
// flip-flops): an 8-bit synchronous counter with enable (EN) and
// synchronous clear (CLR), compared against D0..D7 by the single
// comparator output CMP.
module s208a (EN, CLR, D0, D1, D2, D3, D4, D5, D6, D7, CMP);
  input EN, CLR, D0, D1, D2, D3, D4, D5, D6, D7;
  output CMP;
  wire Q0, Q1, Q2, Q3, Q4, Q5, Q6, Q7;
  wire NCLR;
  wire T0, T1, T2, T3, T4, T5, T6, T7;
  wire C1, C2, C3, C4, C5, C6, C7;
  wire N0, N1, N2, N3, N4, N5, N6, N7;
  wire X0, X1, X2, X3, X4, X5, X6, X7;

  dff (Q0, N0);
  dff (Q1, N1);
  dff (Q2, N2);
  dff (Q3, N3);
  dff (Q4, N4);
  dff (Q5, N5);
  dff (Q6, N6);
  dff (Q7, N7);

  not (NCLR, CLR);

  // Ripple-carry increment, gated by EN.
  xor (T0, Q0, EN);
  and (C1, Q0, EN);
  xor (T1, Q1, C1);
  and (C2, Q1, C1);
  xor (T2, Q2, C2);
  and (C3, Q2, C2);
  xor (T3, Q3, C3);
  and (C4, Q3, C3);
  xor (T4, Q4, C4);
  and (C5, Q4, C4);
  xor (T5, Q5, C5);
  and (C6, Q5, C5);
  xor (T6, Q6, C6);
  and (C7, Q6, C6);
  xor (T7, Q7, C7);

  // Synchronous clear.
  and (N0, T0, NCLR);
  and (N1, T1, NCLR);
  and (N2, T2, NCLR);
  and (N3, T3, NCLR);
  and (N4, T4, NCLR);
  and (N5, T5, NCLR);
  and (N6, T6, NCLR);
  and (N7, T7, NCLR);

  // Comparator: CMP is high when the count equals D7..D0.
  xnor (X0, Q0, D0);
  xnor (X1, Q1, D1);
  xnor (X2, Q2, D2);
  xnor (X3, Q3, D3);
  xnor (X4, Q4, D4);
  xnor (X5, Q5, D5);
  xnor (X6, Q6, D6);
  xnor (X7, Q7, D7);
  and (CMP, X0, X1, X2, X3, X4, X5, X6, X7);
endmodule
