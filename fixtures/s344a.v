// s344a — Verilog twin of s344a.bench (9 inputs, 11 outputs, 15
// flip-flops): a 15-bit loadable LFSR whose taps feed a bank of
// pairwise-XOR observers plus parity, zero-detect and a two-tap AND
// output. S0 powers up at 1 (via the `(* init *)` attribute) so the
// free-running register does not stick at zero.
module s344a (LD, X0, X1, X2, X3, X4, X5, X6, X7,
              Y0, Y1, Y2, Y3, Y4, Y5, Y6, Y7, P, Z, M);
  input LD, X0, X1, X2, X3, X4, X5, X6, X7;
  output Y0, Y1, Y2, Y3, Y4, Y5, Y6, Y7, P, Z, M;
  wire S0, S1, S2, S3, S4, S5, S6, S7, S8, S9, S10, S11, S12, S13, S14;
  wire NLD, FB;
  wire A0, A1, A2, A3, A4, A5, A6, A7, A8, A9, A10, A11, A12, A13, A14;
  wire B0, B1, B2, B3, B4, B5, B6, B7, B8, B9, B10, B11, B12, B13, B14;
  wire N0, N1, N2, N3, N4, N5, N6, N7, N8, N9, N10, N11, N12, N13, N14;

  (* init = 1'b1 *) dff (S0, N0);
  dff (S1, N1);
  dff (S2, N2);
  dff (S3, N3);
  dff (S4, N4);
  dff (S5, N5);
  dff (S6, N6);
  dff (S7, N7);
  dff (S8, N8);
  dff (S9, N9);
  dff (S10, N10);
  dff (S11, N11);
  dff (S12, N12);
  dff (S13, N13);
  dff (S14, N14);

  not (NLD, LD);
  xor (FB, S14, S12, S10, S7);

  // Load path (A*) vs shift path (B*), merged per bit.
  and (A0, LD, X0);
  and (B0, NLD, FB);
  or (N0, A0, B0);
  and (A1, LD, X1);
  and (B1, NLD, S0);
  or (N1, A1, B1);
  and (A2, LD, X2);
  and (B2, NLD, S1);
  or (N2, A2, B2);
  and (A3, LD, X3);
  and (B3, NLD, S2);
  or (N3, A3, B3);
  and (A4, LD, X4);
  and (B4, NLD, S3);
  or (N4, A4, B4);
  and (A5, LD, X5);
  and (B5, NLD, S4);
  or (N5, A5, B5);
  and (A6, LD, X6);
  and (B6, NLD, S5);
  or (N6, A6, B6);
  and (A7, LD, X7);
  and (B7, NLD, S6);
  or (N7, A7, B7);
  and (A8, LD, X0);
  and (B8, NLD, S7);
  or (N8, A8, B8);
  and (A9, LD, X1);
  and (B9, NLD, S8);
  or (N9, A9, B9);
  and (A10, LD, X2);
  and (B10, NLD, S9);
  or (N10, A10, B10);
  and (A11, LD, X3);
  and (B11, NLD, S10);
  or (N11, A11, B11);
  and (A12, LD, X4);
  and (B12, NLD, S11);
  or (N12, A12, B12);
  and (A13, LD, X5);
  and (B13, NLD, S12);
  or (N13, A13, B13);
  and (A14, LD, X6);
  and (B14, NLD, S13);
  or (N14, A14, B14);

  // Observers.
  xor (Y0, S0, S7);
  xor (Y1, S1, S8);
  xor (Y2, S2, S9);
  xor (Y3, S3, S10);
  xor (Y4, S4, S11);
  xor (Y5, S5, S12);
  xor (Y6, S6, S13);
  xor (Y7, S7, S14);
  xor (P, S0, S1, S2, S3, S4, S5, S6, S7, S8, S9, S10, S11, S12, S13, S14);
  nor (Z, S0, S1, S2, S3, S4, S5, S6, S7, S8, S9, S10, S11, S12, S13, S14);
  and (M, S14, S0);
endmodule
