// s27 — the standard ISCAS'89 s27 netlist (4 inputs, 1 output,
// 3 flip-flops), hand-translated to the structural Verilog subset.
// Twin of s27.bench / s27.blif; the ingest_roundtrip suite proves the
// trio sim-equivalent.
module s27 (G0, G1, G2, G3, G17);
  input G0, G1, G2, G3;
  output G17;
  wire G5, G6, G7, G8, G9, G10, G11, G12, G13, G14, G15, G16;

  dff q5 (G5, G10);
  dff q6 (G6, G11);
  dff q7 (G7, G13);

  not u14 (G14, G0);
  not u17 (G17, G11);
  and u8 (G8, G14, G6);
  or u15 (G15, G12, G8);
  or u16 (G16, G3, G8);
  nand u9 (G9, G16, G15);
  nor u10 (G10, G14, G11);
  nor u11 (G11, G5, G9);
  nor u12 (G12, G1, G7);
  nor u13 (G13, G2, G12);
endmodule
